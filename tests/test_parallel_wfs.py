"""Parallel condensation-DAG evaluation pinned against the serial oracle.

The ready-set scheduler (:mod:`repro.lp.parallel`) dispatches independent
condensation components to a worker pool and commits results in topological
order; ``workers=1`` *is* the serial loop.  Every test here is differential:
models, answers, iteration counts and maintenance stats must be bit-identical
for every worker count and executor kind, on the lp layer, the incremental
layer, the engines, the sharded chase and the CLI.  The suite also pins the
thread-safety contracts the scheduler relies on: :func:`_solve_component`
treats its external inputs as read-only (frozensets are passed to prove it),
and concurrent solves never observe a torn snapshot.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench.generators import win_move_game
from repro.core.engine import WellFoundedEngine
from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_program
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant
from repro.lp.grounding import GroundProgram
from repro.lp.parallel import (
    ComponentShard,
    free_threading_available,
    resolve_components_scratch,
    resolve_executor_kind,
    run_ready_set,
)
from repro.lp.wfs import (
    IncrementalWFS,
    _solve_component,
    well_founded_model,
)
from repro.views import MaterializedEngine

WORKER_COUNTS = (2, 4, 8)
EXECUTORS = ("thread", "process")


def atom(name: str, *args: str) -> Atom:
    return Atom(name, tuple(Constant(a) for a in args))


def wide_ground_program(chains: int = 8, length: int = 5) -> GroundProgram:
    """A wide condensation: many independent chains, each ending in a 2-loop.

    Chain ``i`` derives ``c(i,0) .. c(i,length)`` from a base fact and feeds a
    negative 2-cycle (``p_i`` vs ``q_i``), so the program exercises true,
    false *and* undefined atoms across ``chains`` mutually independent
    component groups — the shape the ready-set scheduler parallelises.
    """
    rules: list[NormalRule] = []
    for i in range(chains):
        rules.append(NormalRule(atom("c", str(i), "0")))
        for j in range(1, length + 1):
            rules.append(
                NormalRule(atom("c", str(i), str(j)), (atom("c", str(i), str(j - 1)),))
            )
        rules.append(
            NormalRule(
                atom("p", str(i)),
                (atom("c", str(i), str(length)),),
                (atom("q", str(i)),),
            )
        )
        rules.append(NormalRule(atom("q", str(i)), (), (atom("p", str(i)),)))
        # a chain that never derives: false atoms under the chain's component
        rules.append(NormalRule(atom("dead", str(i)), (atom("never", str(i)),)))
    return GroundProgram(rules)


def model_signature(model):
    return (
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        model.iterations,
    )


# ---------------------------------------------------------------------------
# the generic ready-set scheduler
# ---------------------------------------------------------------------------


class TestRunReadySet:
    def test_serial_runs_in_order(self):
        seen = []
        results = run_ready_set(
            ["a", "b", "c"],
            {"b": ("a",), "c": ("b",)},
            lambda node, _results: ("call", seen.append, (node,)),
            workers=1,
        )
        assert seen == ["a", "b", "c"]
        assert set(results) == {"a", "b", "c"}

    def test_parallel_respects_dependencies(self):
        order = [f"n{i}" for i in range(12)]
        deps = {order[i]: (order[i - 3],) for i in range(3, 12)}
        finished = []
        lock = threading.Lock()

        def work(node):
            time.sleep(0.001)
            with lock:
                finished.append(node)
            return node

        run_ready_set(
            order,
            deps,
            lambda node, _results: ("call", work, (node,)),
            workers=4,
            executor_kind="thread",
        )
        position = {node: i for i, node in enumerate(finished)}
        for node, blocking in deps.items():
            for dep in blocking:
                assert position[dep] < position[node]

    def test_done_actions_short_circuit(self):
        results = run_ready_set(
            [1, 2],
            {2: (1,)},
            lambda node, results: ("done", node * 10),
            workers=4,
            executor_kind="thread",
        )
        assert results == {1: 10, 2: 20}

    def test_first_error_in_topological_order_wins(self):
        def boom(node):
            raise RuntimeError(f"task {node}")

        with pytest.raises(RuntimeError, match="task 0"):
            run_ready_set(
                list(range(6)),
                {},
                lambda node, _results: ("call", boom, (node,)),
                workers=4,
                executor_kind="thread",
            )

    def test_finish_runs_on_the_coordinator(self):
        main_thread = threading.get_ident()
        finish_threads = []

        def finish(node, raw):
            finish_threads.append(threading.get_ident())
            return raw + 1

        results = run_ready_set(
            [1, 2, 3],
            {},
            lambda node, _results: ("call", lambda n: n, (node,)),
            workers=3,
            executor_kind="thread",
            finish=finish,
        )
        assert results == {1: 2, 2: 3, 3: 4}
        assert set(finish_threads) == {main_thread}

    def test_executor_kind_resolution(self):
        assert resolve_executor_kind("thread") == "thread"
        assert resolve_executor_kind("process") == "process"
        assert resolve_executor_kind("auto") in ("thread", "process")
        if not free_threading_available():
            assert resolve_executor_kind("auto") == "process"
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor_kind("fibers")


# ---------------------------------------------------------------------------
# _solve_component's read-only contract (the bugfix this PR flushes out)
# ---------------------------------------------------------------------------


class TestSolveComponentReadOnly:
    def test_frozenset_externals_are_never_mutated(self, monkeypatch):
        """Passing frozensets proves the solver mutates only private copies."""
        import repro.lp.wfs as wfs_module

        original = wfs_module._solve_component
        calls = []

        def frozen(index, component, rule_ids, true_ids, false_ids):
            calls.append(len(component))
            return original(
                index, component, rule_ids, frozenset(true_ids), frozenset(false_ids)
            )

        monkeypatch.setattr(wfs_module, "_solve_component", frozen)
        program = wide_ground_program(chains=4, length=3)
        serial = well_founded_model(program)
        assert calls  # the wrapped solver actually ran
        monkeypatch.setattr(wfs_module, "_solve_component", original)
        assert model_signature(serial) == model_signature(well_founded_model(program))

    def test_frozensets_survive_the_incremental_path(self, monkeypatch):
        import repro.lp.wfs as wfs_module

        original = wfs_module._solve_component

        def frozen(index, component, rule_ids, true_ids, false_ids):
            return original(
                index, component, rule_ids, frozenset(true_ids), frozenset(false_ids)
            )

        monkeypatch.setattr(wfs_module, "_solve_component", frozen)
        program = GroundProgram()
        state = IncrementalWFS(program)
        for i in range(6):
            program.add(NormalRule(atom("a", str(i)), (), (atom("b", str(i)),)))
            program.add(NormalRule(atom("b", str(i)), (), (atom("a", str(i)),)))
            incremental = state.model()
            scratch = well_founded_model(program)
            # iterations are per-refresh on the incremental path, so compare
            # the three truth sets (the repo-wide incremental convention)
            assert incremental.true_atoms() == scratch.true_atoms()
            assert incremental.false_atoms() == scratch.false_atoms()
            assert incremental.undefined_atoms() == scratch.undefined_atoms()

    def test_shard_solve_equals_index_solve(self):
        """The picklable shard borrows the index closures — same answers."""
        program = wide_ground_program(chains=2, length=2)
        index = program.index()
        for member_ids in index.dependency_components_ids():
            component = set(member_ids)
            rule_ids = [
                rule_id
                for atom_id in component
                for rule_id in index.active_rule_ids_for_head_id(atom_id)
            ]
            shard = ComponentShard.from_index(index, rule_ids)
            ext = frozenset()
            assert _solve_component(
                shard, component, tuple(rule_ids), ext, ext
            ) == _solve_component(index, component, rule_ids, ext, ext)

    def test_concurrent_solves_share_one_frozen_snapshot(self):
        """Barrier-released workers racing on one snapshot stay torn-free.

        All components are released at once against the *same* frozenset
        snapshot; if any solve mutated shared inputs, another worker would
        observe the tear and diverge from the serial model.
        """
        program = wide_ground_program(chains=8, length=4)
        serial = model_signature(well_founded_model(program))
        barrier = threading.Barrier(4, timeout=10)
        started = []

        def hook(component):
            # Only the first wave can meet a full barrier; later components
            # just record that they ran (the pool has 4 threads).
            started.append(len(component))
            if len(started) <= 4:
                try:
                    barrier.wait(timeout=1)
                except threading.BrokenBarrierError:
                    pass

        parallel = model_signature(
            well_founded_model(
                program, workers=4, executor="thread", component_hook=hook
            )
        )
        assert parallel == serial
        assert len(started) >= 4


# ---------------------------------------------------------------------------
# lp layer: scratch and incremental parallel ≡ serial
# ---------------------------------------------------------------------------


class TestParallelScratch:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_wide_program_is_bit_identical(self, workers, executor):
        program = wide_ground_program()
        serial = well_founded_model(program)
        parallel = well_founded_model(program, workers=workers, executor=executor)
        assert model_signature(parallel) == model_signature(serial)

    def test_win_move_ground_program(self):
        from repro.lp.grounding import relevant_grounding

        program = win_move_game(8, seed=5)
        ground = relevant_grounding(program)
        serial = well_founded_model(ground)
        for workers in WORKER_COUNTS:
            parallel = well_founded_model(ground, workers=workers, executor="thread")
            assert model_signature(parallel) == model_signature(serial)

    def test_resolver_matches_serial_commit_loop(self):
        program = wide_ground_program(chains=5, length=3)
        index = program.index()
        true_ids, false_ids, rounds = resolve_components_scratch(
            index, workers=4, executor="thread"
        )
        serial = well_founded_model(program)
        assert frozenset(index.atoms_of(true_ids)) == serial.true_atoms()
        assert rounds == serial.iterations

    def test_empty_program(self):
        model = well_founded_model(GroundProgram(), workers=4, executor="thread")
        assert model.true_atoms() == frozenset()
        assert model.undefined_atoms() == frozenset()


class TestParallelIncremental:
    def grow_in_chunks(self, workers, executor):
        """Grow one program through both states; compare after every chunk."""
        serial_program, parallel_program = GroundProgram(), GroundProgram()
        serial_state = IncrementalWFS(serial_program)
        parallel_state = IncrementalWFS(
            parallel_program, workers=workers, executor=executor
        )
        chunks = []
        for i in range(4):
            chunk = [
                NormalRule(atom("base", str(i))),
                NormalRule(atom("mid", str(i)), (atom("base", str(i)),)),
                # cross-chunk edge: rebinds an earlier component's dependents
                NormalRule(
                    atom("mid", str(i)),
                    (atom("mid", str(max(0, i - 1))),),
                ),
                NormalRule(atom("odd", str(i)), (), (atom("even", str(i)),)),
                NormalRule(atom("even", str(i)), (), (atom("odd", str(i)),)),
            ]
            chunks.append(chunk)
            serial_program.update(chunk)
            parallel_program.update(chunk)
            serial_model = serial_state.model()
            parallel_model = parallel_state.model()
            assert model_signature(parallel_model) == model_signature(serial_model)
            assert parallel_state.last_resolved == serial_state.last_resolved
            assert parallel_state.last_reused == serial_state.last_reused
            assert (
                parallel_state.last_changed_atoms == serial_state.last_changed_atoms
            )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_thread_pool_growth(self, workers):
        self.grow_in_chunks(workers, "thread")

    def test_process_pool_growth(self):
        self.grow_in_chunks(2, "process")

    def test_unchanged_refresh_reuses_everything(self):
        program = wide_ground_program(chains=3, length=2)
        state = IncrementalWFS(program, workers=4, executor="thread")
        first = model_signature(state.model())
        again = model_signature(state.model())
        assert first == again
        assert state.last_resolved == 0


# ---------------------------------------------------------------------------
# engines: every backend × rewrite × incremental combination
# ---------------------------------------------------------------------------

_ENGINE_RULES = """
alarm(X) -> page(X).
page(X) -> escalate(X).
escalate(X), not muted(X) -> wake(X).
blocked(X), not wake(X) -> quiet(X).
"""


def engine_workload():
    program, _ = parse_program(_ENGINE_RULES)
    facts = [parse_atom(f"alarm(s{i})") for i in range(12)]
    facts += [parse_atom("muted(s1)"), parse_atom("blocked(s1)"), parse_atom("blocked(s2)")]
    return program, facts


def engine_observables(engine):
    model = engine.model()
    return (
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        model.converged,
        frozenset(engine.answer("? wake(X)")),
        engine.holds("? quiet(X), not muted(X)"),
    )


class TestEngineDifferential:
    @pytest.mark.parametrize("backend", ["tuple", "columnar", "sqlite"])
    @pytest.mark.parametrize("rewrite", [False, True])
    @pytest.mark.parametrize("incremental", [True, False])
    def test_all_configurations(self, backend, rewrite, incremental):
        program, facts = engine_workload()
        serial = WellFoundedEngine(
            program,
            facts,
            backend=backend,
            rewrite=rewrite,
            incremental=incremental,
            workers=1,
        )
        parallel = WellFoundedEngine(
            program,
            facts,
            backend=backend,
            rewrite=rewrite,
            incremental=incremental,
            workers=4,
        )
        assert engine_observables(parallel) == engine_observables(serial)
        assert (
            parallel.last_query_stats["rounds"] == serial.last_query_stats["rounds"]
        )

    def test_workers_validation(self):
        program, facts = engine_workload()
        with pytest.raises(ValueError, match="workers"):
            WellFoundedEngine(program, facts, workers=0)
        with pytest.raises(ValueError, match="workers"):
            MaterializedEngine(program, facts, workers=-1)

    def test_materialized_updates_match_serial(self):
        program, facts = engine_workload()
        serial = MaterializedEngine(program, facts, workers=1)
        parallel = MaterializedEngine(program, facts, workers=4)
        script = [
            ("add", "alarm(s99)"),
            ("add", "muted(s0)"),
            ("retract", "muted(s0)"),
            ("retract", "alarm(s99)"),
        ]
        for verb, text in script:
            for engine in (serial, parallel):
                if verb == "add":
                    engine.add_facts(parse_atom(text))
                else:
                    engine.retract_facts(parse_atom(text))
            assert model_signature(parallel.model()) == model_signature(
                serial.model()
            )
            assert frozenset(parallel.answer("? wake(X)")) == frozenset(
                serial.answer("? wake(X)")
            )
        maintained, oracle = parallel.model(), parallel.scratch_model()
        assert maintained.true_atoms() == oracle.true_atoms()
        assert maintained.false_atoms() == oracle.false_atoms()
        assert maintained.undefined_atoms() == oracle.undefined_atoms()


# ---------------------------------------------------------------------------
# satellite: deterministic stats across worker counts
# ---------------------------------------------------------------------------


class TestDeterministicStats:
    def test_last_query_stats_shape_and_rounds(self):
        program, facts = engine_workload()
        reference = None
        for workers in (1, 2, 8):
            engine = WellFoundedEngine(program, facts, workers=workers)
            engine.model()
            engine.answer("? wake(X)")
            stats = engine.last_query_stats
            assert stats["workers"] == workers
            assert isinstance(stats["seconds"], float)
            # the decision stats are pinned exactly; cache-traffic counters
            # may differ (the sharded chase bypasses the main engine's
            # splice path), but the JSON shape must stay identical
            invariant = (sorted(stats), stats["rounds"], stats["mode"])
            if reference is None:
                reference = invariant
            else:
                assert invariant == reference

    def test_bench_json_shape_is_worker_invariant(self):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "bench_parallel_wfs",
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "bench_parallel_wfs.py",
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        data = bench.measure(
            sizes=bench.SMOKE_SIZES,
            worker_counts=(1, 2),
            samples=1,
            latency=0.0005,
        )
        assert data["all_models_identical"] is True
        assert {"benchmark", "results", "speedup_at_4_workers"} <= set(data)
        shapes = {
            tuple(sorted(row))
            for row in data["results"]
        }
        assert len(shapes) == 1  # every row has the identical key set


# ---------------------------------------------------------------------------
# the sharded chase agenda
# ---------------------------------------------------------------------------

_CHASE_RULES = """
alarm(X) -> page(X).
page(X) -> escalate(X).
escalate(X), not muted(X) -> wake(X).
"""


def forest_signature(forest):
    return sorted(
        (
            node.depth,
            node.level,
            str(node.label),
            str(node.edge_rule),
            sorted(str(forest.node(c).label) for c in node.children),
        )
        for node in forest.nodes()
    )


class TestChaseParallel:
    def build(self, workers):
        program, _ = parse_program(_CHASE_RULES)
        facts = [parse_atom(f"alarm(s{i})") for i in range(13)]
        facts.append(parse_atom("muted(s3)"))
        return WellFoundedEngine(program, facts, workers=workers)

    def test_forests_are_bit_identical(self):
        serial = self.build(1)
        serial.model()
        for workers in WORKER_COUNTS:
            parallel = self.build(workers)
            assert parallel._chase._parallel_eligible()
            parallel.model()
            assert forest_signature(parallel.chase_forest()) == forest_signature(
                serial.chase_forest()
            )
            assert model_signature(parallel.model()) == model_signature(
                serial.model()
            )

    def test_deepening_after_parallel_expansion(self):
        program, _ = parse_program("p(X) -> q(X).\nq(X) -> r(X).\nr(X) -> s(X).\n")
        facts = [parse_atom(f"p(c{i})") for i in range(6)]
        serial = WellFoundedEngine(program, facts, workers=1)
        parallel = WellFoundedEngine(program, facts, workers=4)
        assert frozenset(parallel.answer("? s(X)")) == frozenset(
            serial.answer("? s(X)")
        )
        assert forest_signature(parallel.chase_forest()) == forest_signature(
            serial.chase_forest()
        )

    def test_side_atom_programs_fall_back_to_serial(self):
        rules = """
        source(X) -> reach(X).
        edge(X, Y), reach(X) -> reach(Y).
        sink(X), not reach(X) -> dark(X).
        """
        program, _ = parse_program(rules)
        facts = [parse_atom(f"edge(n{i}, n{i + 1})") for i in range(7)]
        facts += [parse_atom("source(n0)"), parse_atom("sink(n7)"), parse_atom("sink(n99)")]
        serial = WellFoundedEngine(program, facts, workers=1)
        parallel = WellFoundedEngine(program, facts, workers=4)
        assert not parallel._chase._parallel_eligible()
        assert model_signature(parallel.model()) == model_signature(serial.model())

    def test_direct_chase_engine_sharding(self):
        from repro.chase.engine import GuardedChaseEngine
        from repro.lang.skolem import skolemize_program

        program, _ = parse_program(_CHASE_RULES)
        facts = [parse_atom(f"alarm(t{i})") for i in range(9)]
        skolemized = skolemize_program(program)
        serial = GuardedChaseEngine(skolemized, facts, workers=1)
        serial.expand(4)
        parallel = GuardedChaseEngine(skolemized, facts, workers=4)
        parallel.expand(4)
        assert forest_signature(parallel.forest) == forest_signature(serial.forest)
        # iterative deepening continues from the merged forest
        serial.expand(6)
        parallel.expand(6)
        assert forest_signature(parallel.forest) == forest_signature(serial.forest)

    def test_chase_workers_validation(self):
        from repro.chase.engine import GuardedChaseEngine

        program, _ = parse_program(_CHASE_RULES)
        with pytest.raises(ValueError, match="workers"):
            GuardedChaseEngine(program, [], workers=0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLIWorkers:
    def run_cli(self, tmp_path, capsys, *extra):
        from repro.cli import main

        path = tmp_path / "prog.lp"
        path.write_text(
            _ENGINE_RULES + "alarm(s0). alarm(s1). alarm(s2). muted(s1).\n"
        )
        code = main([str(path), "--query", "? wake(X)", *extra])
        assert code == 0
        return capsys.readouterr().out

    def test_query_output_is_worker_invariant(self, tmp_path, capsys):
        serial = self.run_cli(tmp_path, capsys, "--workers", "1")
        parallel = self.run_cli(tmp_path, capsys, "--workers", "4")
        assert parallel == serial

    def test_updates_script_with_workers(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "prog.lp"
        prog.write_text(_ENGINE_RULES + "alarm(s0). muted(s1).\n")
        script = tmp_path / "script.upd"
        script.write_text("+ alarm(s7).\n? wake(X)\n- alarm(s7).\n? wake(X)\n")
        outputs = []
        for workers in ("1", "4"):
            code = main(
                [str(prog), "--updates", str(script), "--check", "--workers", workers]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_scenarios_replay_with_workers(self, capsys):
        from repro.scenarios.cli import scenarios_main

        code = scenarios_main(
            ["replay", "win-move", "--length", "16", "--check", "--workers", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DIVERGENCE" not in out
