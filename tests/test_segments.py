"""Tests for the chase-segment cache (:mod:`repro.chase.segments`)."""

from __future__ import annotations

import pytest

from repro.bench.generators import paper_example_program
from repro.chase.engine import GuardedChaseEngine, chase_forest
from repro.chase.segments import (
    SegmentStore,
    canonical_atom_shape,
    clear_segment_stores,
    program_fingerprint,
    segment_store_info,
    shared_segment_store,
)
from repro.cli import main
from repro.core.engine import WellFoundedEngine
from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_program
from repro.lang.program import Database, DatalogPMProgram
from repro.lang.rules import NTGD
from repro.lang.skolem import skolemize_program
from repro.lang.terms import Constant, FunctionTerm, Variable


@pytest.fixture(autouse=True)
def _fresh_stores():
    """Each test starts and ends with an empty segment-store registry."""
    clear_segment_stores()
    yield
    clear_segment_stores()


def n(name: str) -> FunctionTerm:
    """A labelled null."""
    return FunctionTerm(name, ())


class TestCanonicalAtomShape:
    def test_equal_up_to_null_renaming(self):
        left = Atom("p", (Constant("a"), n("f1"), n("f2")))
        right = Atom("p", (Constant("a"), n("g7"), n("g9")))
        assert canonical_atom_shape(left) == canonical_atom_shape(right)

    def test_null_equality_pattern_distinguishes(self):
        repeated = Atom("p", (n("f1"), n("f1")))
        distinct = Atom("p", (n("f1"), n("f2")))
        assert canonical_atom_shape(repeated) != canonical_atom_shape(distinct)

    def test_constants_are_fixed(self):
        assert canonical_atom_shape(Atom("p", (Constant("a"),))) != canonical_atom_shape(
            Atom("p", (Constant("b"),))
        )

    def test_predicate_distinguishes(self):
        assert canonical_atom_shape(Atom("p", ())) != canonical_atom_shape(Atom("q", ()))


class TestProgramFingerprint:
    def _rules(self, text: str):
        program, _ = parse_program(text)
        return list(skolemize_program(program))

    def test_order_invariant(self):
        a = self._rules("p(X) -> q(X). q(X) -> r(X).")
        b = self._rules("q(X) -> r(X). p(X) -> q(X).")
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_different_rules_differ(self):
        a = self._rules("p(X) -> q(X).")
        b = self._rules("p(X) -> r(X).")
        assert program_fingerprint(a) != program_fingerprint(b)

    def test_guard_mode_distinguishes(self):
        rules = self._rules("p(X) -> q(X).")
        assert program_fingerprint(rules) != program_fingerprint(
            rules, require_guarded=False
        )

    def test_shared_store_is_per_fingerprint(self):
        rules = self._rules("p(X) -> q(X).")
        assert shared_segment_store(rules) is shared_segment_store(list(rules))
        other = self._rules("p(X) -> r(X).")
        assert shared_segment_store(rules) is not shared_segment_store(other)


class TestSegmentStore:
    def test_record_lookup_roundtrip(self):
        store = SegmentStore("fp")
        shape = canonical_atom_shape(Atom("p", (n("f"),)))
        assert store.lookup(shape) is None
        assert store.record(shape, 3, ((0, 0), (1, 1)))
        segment = store.lookup(shape)
        assert segment.relative_depth == 3 and segment.entries == ((0, 0), (1, 1))
        assert store.stats()["hits"] == 1 and store.stats()["misses"] == 1

    def test_only_deeper_recordings_replace(self):
        store = SegmentStore("fp")
        shape = canonical_atom_shape(Atom("p", ()))
        assert store.record(shape, 3, ((0, 0),))
        assert not store.needs(shape, 3)
        assert not store.record(shape, 2, ())
        assert store.lookup(shape).relative_depth == 3
        assert store.needs(shape, 4)

    def test_zero_depth_empty_and_oversized_segments_rejected(self):
        store = SegmentStore("fp", max_segment_nodes=1)
        shape = canonical_atom_shape(Atom("p", ()))
        assert not store.record(shape, 0, ((0, 0),))
        assert not store.record(shape, 2, ())  # "no children" is DB-dependent
        assert not store.record(shape, 2, ((0, 0), (1, 0)))
        assert len(store) == 0

    def test_stale_equal_depth_segment_is_replaced_by_larger(self):
        store = SegmentStore("fp")
        shape = canonical_atom_shape(Atom("p", ()))
        assert store.record(shape, 2, ((0, 0),))
        assert not store.record(shape, 2, ((0, 1),))  # same depth, same size
        assert store.record(shape, 2, ((0, 0), (1, 1)))  # same depth, larger
        assert store.lookup(shape).entries == ((0, 0), (1, 1))

    def test_lru_eviction(self):
        store = SegmentStore("fp", max_segments=2)
        shapes = [canonical_atom_shape(Atom(f"p{i}", ())) for i in range(3)]
        for shape in shapes:
            store.record(shape, 1, ((0, 0),))
        assert len(store) == 2
        assert store.lookup(shapes[0]) is None  # evicted first
        assert store.stats()["evictions"] == 1


def _forest_signature(engine: WellFoundedEngine):
    """Everything structural about an engine's chase segment and model."""
    model = engine.model()
    forest = model.forest()
    labels = forest.labels()
    return (
        labels,
        frozenset(forest.edge_rules()),
        {atom: (forest.depth_of_atom(atom), forest.level_of_atom(atom)) for atom in labels},
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        (model.depth, model.converged, model.iterations),
    )


class TestCachedChaseEquality:
    def test_paper_example_identical_with_and_without_cache(self):
        program, database = paper_example_program(2)
        uncached = WellFoundedEngine(program, database, segment_cache=False)
        cold = WellFoundedEngine(program, database, segment_cache=True)
        warm = WellFoundedEngine(program, database, segment_cache=True)
        expected = _forest_signature(uncached)
        assert _forest_signature(cold) == expected
        assert _forest_signature(warm) == expected

    def test_store_persists_across_engine_instances(self):
        program, database = paper_example_program(1)
        first = WellFoundedEngine(program, database, segment_cache=True)
        first.model()
        assert first.segment_cache_stats()["segments_recorded"] > 0
        second = WellFoundedEngine(program, database, segment_cache=True)
        second.model()
        stats = second.segment_cache_stats()
        assert stats["nodes_spliced"] > 0, "warm engine should splice, not re-derive"
        assert stats["segments_recorded"] == 0, "the store already knew every type"
        assert stats["store"]["hits"] > 0

    def test_store_is_database_independent(self):
        """Same rules, different database: deep (all-null) types still splice."""
        program, database = paper_example_program(0)
        WellFoundedEngine(program, database, segment_cache=True).model()
        _, other_database = paper_example_program(3)
        engine = WellFoundedEngine(program, other_database, segment_cache=True)
        expected = _forest_signature(
            WellFoundedEngine(program, other_database, segment_cache=False)
        )
        assert _forest_signature(engine) == expected
        assert engine.segment_cache_stats()["nodes_spliced"] > 0

    def test_stale_segment_is_superseded_not_pinned(self):
        """Regression: a segment recorded from a poorer database must not
        suppress recording the complete subtree observed later — one hit on a
        stale (here: would-be empty) segment used to block re-recording
        forever, so repeated runs re-derived the difference every time."""
        program = "p(X), q(X) -> r(X)."
        poor = Database([Atom("p", (Constant("a"),))])
        rich = Database([Atom("p", (Constant("a"),)), Atom("q", (Constant("a"),))])
        WellFoundedEngine(program, poor, segment_cache=True).model()  # p(a) alone: no firing
        WellFoundedEngine(program, rich, segment_cache=True).model()  # derives r(a), must record it
        third = WellFoundedEngine(program, rich, segment_cache=True)
        third.model()
        assert third.holds("? r(a)")
        assert third.segment_cache_stats()["nodes_spliced"] > 0, (
            "third engine should splice r(a), not re-derive it",
            third.segment_cache_stats(),
        )

    def test_disabled_cache_reports_disabled(self):
        program, database = paper_example_program(0)
        engine = WellFoundedEngine(program, database, segment_cache=False)
        engine.model()
        stats = engine.segment_cache_stats()
        assert stats["enabled"] is False and "store" not in stats
        assert segment_store_info()["stores"] == 0

    def test_unguarded_fallback_disables_cache(self):
        """A guard that cannot bind every variable makes firing ambiguous."""
        x, y = Variable("X"), Variable("Y")
        program = DatalogPMProgram(
            [NTGD((Atom("p", (x,)), Atom("q", (y,))), Atom("r", (x,)), label="join")]
        )
        database = Database([Atom("p", (Constant("a"),)), Atom("q", (Constant("b"),))])
        engine = WellFoundedEngine(
            program, database, require_guarded=False, segment_cache=True
        )
        engine.model()
        stats = engine.segment_cache_stats()
        assert stats["enabled"] is False
        assert "guard" in stats["disabled_reason"]
        # declined caching must not register an orphan store either
        assert segment_store_info()["stores"] == 0
        assert engine.holds("? r(a)")


class TestSharedNullCollisions:
    """Frontier atoms sharing a null must keep their own identities."""

    PROGRAM = """
    a(X) -> exists Y r(X, Y).
    r(X, Y) -> p(Y).
    r(X, Y) -> q(Y).
    p(X), not q(X) -> only_p(X).
    a(c1).
    a(c2).
    """

    def test_shared_nulls_are_not_merged_across_siblings(self):
        """p(ν) and q(ν) share the null ν of r(c, ν); p's and q's shapes
        coincide across the two chains, yet each splice must reuse *its own*
        chain's null, never the other chain's."""
        uncached = WellFoundedEngine(self.PROGRAM, segment_cache=False)
        cold = WellFoundedEngine(self.PROGRAM, segment_cache=True)
        warm = WellFoundedEngine(self.PROGRAM, segment_cache=True)
        expected = _forest_signature(uncached)
        assert _forest_signature(cold) == expected
        assert _forest_signature(warm) == expected
        forest = warm.model().forest()
        # Every p-node's null must be the null of an r-node of the same tree.
        for node in forest.nodes():
            if node.label.predicate in ("p", "q"):
                parent = forest.parent(node.node_id)
                assert parent.label.predicate == "r"
                assert node.label.args[0] == parent.label.args[1]

    def test_per_chain_answers_unchanged(self):
        engine = WellFoundedEngine(self.PROGRAM, segment_cache=True)
        baseline = WellFoundedEngine(self.PROGRAM, segment_cache=False)
        for query in ("? p(X)", "? q(X)", "? only_p(X)"):
            assert engine.holds(query) == baseline.holds(query), query


class TestChaseEngineCache:
    def _skolemized(self, text: str):
        program, database = parse_program(text)
        return skolemize_program(program), database

    def test_chase_forest_accepts_store(self):
        rules, database = self._skolemized("e(X) -> exists Y n(X, Y). n(X,Y) -> e(Y). e(c).")
        store = shared_segment_store(rules)
        first = chase_forest(rules, database, 6, segment_cache=store)
        second = chase_forest(rules, database, 6, segment_cache=store)
        plain = chase_forest(rules, database, 6)
        assert first.labels() == second.labels() == plain.labels()
        assert set(first.edge_rules()) == set(second.edge_rules()) == set(plain.edge_rules())
        assert store.stats()["hits"] > 0

    def test_splice_respects_depth_bound(self):
        rules, database = self._skolemized("e(X) -> exists Y n(X, Y). n(X,Y) -> e(Y). e(c).")
        store = shared_segment_store(rules)
        chase_forest(rules, database, 10, segment_cache=store)
        shallow = chase_forest(rules, database, 4, segment_cache=store)
        assert shallow.max_depth() <= 4
        assert shallow.labels() == chase_forest(rules, database, 4).labels()

    def test_splice_respects_node_budget(self):
        rules, database = self._skolemized("e(X) -> exists Y n(X, Y). n(X,Y) -> e(Y). e(c).")
        store = shared_segment_store(rules)
        chase_forest(rules, database, 12, segment_cache=store)
        engine = GuardedChaseEngine(rules, database, max_nodes=5, segment_cache=store)
        with pytest.raises(GroundingError):
            engine.expand(12)

    def test_deepening_engine_reuses_own_segments(self):
        rules, database = self._skolemized("e(X) -> exists Y n(X, Y). n(X,Y) -> e(Y). e(c).")
        store = shared_segment_store(rules)
        engine = GuardedChaseEngine(rules, database, segment_cache=store)
        engine.expand(4)
        engine.expand(8)
        assert engine.cache_stats["nodes_spliced"] > 0
        plain = chase_forest(rules, database, 8)
        assert engine.forest.labels() == plain.labels()
        for atom in plain.labels():
            assert engine.forest.level_of_atom(atom) == plain.level_of_atom(atom)


class TestCLISegmentCacheFlags:
    PROGRAM = """
    scientist(X) -> exists Y isAuthorOf(X, Y).
    scientist(john).
    """

    @pytest.fixture()
    def program_file(self, tmp_path):
        path = tmp_path / "prog.dlp"
        path.write_text(self.PROGRAM)
        return str(path)

    def test_flag_defaults_to_enabled(self):
        from repro.cli import build_argument_parser

        args = build_argument_parser().parse_args(["prog.dlp"])
        assert args.segment_cache is True
        args = build_argument_parser().parse_args(["prog.dlp", "--no-segment-cache"])
        assert args.segment_cache is False

    def test_answers_identical_either_way(self, program_file, capsys):
        assert main([program_file, "--query", "? isAuthorOf(john, Y)"]) == 0
        with_cache = capsys.readouterr().out
        assert (
            main([program_file, "--no-segment-cache", "--query", "? isAuthorOf(john, Y)"])
            == 0
        )
        without_cache = capsys.readouterr().out
        assert with_cache == without_cache
        assert "? isAuthorOf(john, Y) : yes" in with_cache

    def test_verbose_prints_cache_stats(self, program_file, capsys):
        assert main([program_file, "--verbose", "--query", "? scientist(john)"]) == 0
        out = capsys.readouterr().out
        assert "# segment-cache:" in out
        assert "# segment-store:" in out

    def test_verbose_with_cache_disabled(self, program_file, capsys):
        assert main([program_file, "--verbose", "--no-segment-cache", "--atom", "scientist(john)"]) == 0
        out = capsys.readouterr().out
        assert "# segment-cache:" in out
        assert "enabled=False" in out


# ---------------------------------------------------------------------------
# PR 5 satellites: unified splice placement, cold context-sensitive keys
# ---------------------------------------------------------------------------


# the canonical raw-forest identity (root label + rule path + depth/level),
# shared with the agenda differential suite so every differential compares
# the same notion of forest equality
from test_chase_agenda import forest_signature as _chase_signature  # noqa: E402


class TestUnifiedSplicePlacement:
    """The memoised replay and the validated replay share one placement core.

    ``_replay_memoised`` and ``_instantiate_segment`` both place derivations
    exclusively through ``_place_one_derivation``; this differential pins
    replayed ≡ instantiated ≡ underived forests, with the memo path proven to
    actually run.
    """

    PROGRAM = """
    scientist(X) -> exists Y isAuthorOf(X, Y).
    isAuthorOf(X, Y) -> exists Z cites(Y, Z).
    cites(Y, Z) -> article(Z).
    scientist(john).
    scientist(jane).
    """

    def _engines(self, depth=6):
        program, database = parse_program(self.PROGRAM)
        skolemized = skolemize_program(program)
        store = SegmentStore("unified-splice-test")
        recorder = GuardedChaseEngine(skolemized, database, segment_cache=store)
        recorder.expand(depth)
        return program, database, skolemized, store, recorder, depth

    def test_memoised_equals_validated_equals_underived(self, monkeypatch):
        program, database, skolemized, store, recorder, depth = self._engines()
        expected = _chase_signature(recorder.forest)

        # fast path: the recorder seeded replay memos, so this engine places
        # subtrees through _replay_memoised
        memoised = GuardedChaseEngine(skolemized, database, segment_cache=store)
        memoised.expand(depth)
        assert memoised.cache_stats["nodes_spliced"] > 0

        # validated path: disable the memo lookups so the same splices run
        # through _instantiate_segment's guard-matching replay
        validated = GuardedChaseEngine(skolemized, database, segment_cache=store)
        monkeypatch.setattr(
            store, "replay_lookup", lambda key, root_label: None
        )
        validated.expand(depth)
        assert validated.cache_stats["nodes_spliced"] > 0

        # reference: no cache at all
        underived = GuardedChaseEngine(skolemized, database, segment_cache=False)
        underived.expand(depth)

        assert _chase_signature(memoised.forest) == expected
        assert _chase_signature(validated.forest) == expected
        assert _chase_signature(underived.forest) == expected

    def test_memo_path_actually_taken(self):
        _, database, skolemized, store, recorder, depth = self._engines()
        replayed = GuardedChaseEngine(skolemized, database, segment_cache=store)
        calls = []
        original = replayed._replay_memoised

        def spy(root_id, memo, segment, max_depth):
            result = original(root_id, memo, segment, max_depth)
            calls.append(result is not None)
            return result

        replayed._replay_memoised = spy
        replayed.expand(depth)
        assert any(calls), "expected at least one successful memoised replay"
        assert _chase_signature(replayed.forest) == _chase_signature(recorder.forest)


class TestColdContextSensitiveKeys:
    """A context that only materialises during saturation must still hit.

    ``gate(X)`` is derived (not a database fact), so a fresh engine's lookup
    key for ``start(c)`` has an empty context while the recording key carries
    ``gate(c)`` — before the alias double-keying this was a guaranteed miss
    on every fresh engine over the same program (ROADMAP "Context-sensitive
    key hit-rate").
    """

    PROGRAM = """
    start(X) -> gate(X).
    start(X) -> exists Y step(X, Y).
    step(X, Y), gate(X) -> good(Y).
    start(c1).
    start(c2).
    """

    def test_second_fresh_engine_hits_through_the_alias(self):
        program, database = parse_program(self.PROGRAM)
        skolemized = skolemize_program(program)
        store = SegmentStore("cold-key-test")

        first = GuardedChaseEngine(skolemized, database, segment_cache=store)
        first.expand(4)
        assert first.cache_stats["hits"] == 0  # everything is cold
        assert store.stats()["aliases"] > 0  # cold keys were double-keyed

        second = GuardedChaseEngine(skolemized, database, segment_cache=store)
        second.expand(4)
        assert second.cache_stats["hits"] > 0, "cold key must now hit"
        assert second.cache_stats["nodes_spliced"] > 0
        assert store.stats()["alias_hits"] > 0
        assert _chase_signature(second.forest) == _chase_signature(first.forest)

        uncached = GuardedChaseEngine(skolemized, database, segment_cache=False)
        uncached.expand(4)
        assert _chase_signature(second.forest) == _chase_signature(uncached.forest)

    def test_alias_never_registered_for_incomparable_contexts(self):
        """Aliasing requires lookup context ⊆ recorded context."""
        store = SegmentStore("alias-guard-test")
        store.record(("shape",), 2, ((0, 0),))
        # a directly recorded key is never aliased away
        store.record_alias(("other",), ("missing",))  # target absent: ignored
        assert store.lookup(("other",)) is None
        store.record_alias(("shape",), ("shape",))  # self-alias: ignored
        assert store.stats()["aliases"] == 0

    def test_alias_dropped_when_target_evicted(self):
        store = SegmentStore("alias-evict-test", max_segments=1)
        store.record(("target",), 2, ((0, 0),))
        store.record_alias(("alias",), ("target",))
        assert store.lookup(("alias",)) is not None
        store.record(("other",), 2, ((0, 0),))  # evicts ("target",) (LRU=1)
        assert store.lookup(("alias",)) is None  # lazily dropped
        assert store.stats()["aliases"] == 0

    def test_wellfounded_engine_end_to_end_warm(self):
        engine_a = WellFoundedEngine(*parse_program(self.PROGRAM))
        assert engine_a.holds("? good(Y)")
        engine_b = WellFoundedEngine(*parse_program(self.PROGRAM))
        assert engine_b.holds("? good(Y)")
        stats = engine_b.segment_cache_stats()
        assert stats["hits"] > 0, stats


class TestSharedRegistryConcurrency:
    """The satellite bugfix: every registry mutation — record, alias drops,
    replay memoization — runs under the store lock, and ``replay_record``
    refuses to attach a memo computed from a segment the store has since
    superseded (the compare-and-memoize identity check).  Two engines
    hammering one persistent registry concurrently must build forests
    bit-identical to their uncached references.
    """

    def test_record_returns_the_stored_segment_for_pinning(self):
        from repro.chase.segments import canonical_atom_shape

        store = SegmentStore("pin-fp")
        shape = canonical_atom_shape(Atom("p", ()))
        stored = store.record(shape, 2, ((0, 0),))
        assert stored is store.lookup(shape)
        # a rejected recording returns None, not a stale object
        assert store.record(shape, 1, ((0, 1),)) is None

    def test_replay_memo_from_superseded_segment_is_dropped(self):
        from repro.chase.segments import canonical_atom_shape

        store = SegmentStore("memo-fp")
        shape = canonical_atom_shape(Atom("p", ()))
        first = store.record(shape, 2, ((0, 0),))
        second = store.record(shape, 3, ((0, 0), (1, 1)))
        assert second is not None and second is not first
        # a memo computed against `first` must not attach to `second`
        store.replay_record(shape, Atom("p", ()), ((0, 0),), segment=first)
        assert store.replay_lookup(shape, Atom("p", ())) is None
        store.replay_record(shape, Atom("p", ()), ((0, 0),), segment=second)
        assert store.replay_lookup(shape, Atom("p", ())) == ((0, 0),)

    def test_two_engines_share_one_registry_concurrently(self):
        import threading

        program, _ = parse_program(
            "alarm(X) -> page(X).\npage(X) -> escalate(X).\nescalate(X) -> archive(X).\n"
        )
        skolemized = list(skolemize_program(program))

        def facts(tag: str, count: int) -> list[Atom]:
            return [Atom("alarm", (Constant(f"{tag}{i}"),)) for i in range(count)]

        def signature(forest):
            return sorted(
                (node.depth, node.level, str(node.label), str(node.edge_rule))
                for node in forest.nodes()
            )

        reference = {}
        for tag in ("a", "b"):
            engine = GuardedChaseEngine(skolemized, facts(tag, 6), segment_cache=None)
            engine.expand(4)
            reference[tag] = signature(engine.forest)

        store = SegmentStore("stress-fp")
        errors: list[str] = []
        start = threading.Barrier(2, timeout=20)

        def hammer(tag: str) -> None:
            try:
                start.wait(timeout=20)
                for _ in range(8):
                    engine = GuardedChaseEngine(
                        skolemized, facts(tag, 6), segment_cache=store
                    )
                    engine.expand(4)
                    observed = signature(engine.forest)
                    if observed != reference[tag]:
                        errors.append(f"{tag}: cached forest diverged")
                        return
            except Exception as error:  # pragma: no cover - the regression
                errors.append(f"{tag}: {type(error).__name__}: {error}")

        threads = [threading.Thread(target=hammer, args=(tag,)) for tag in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        # the registry stayed internally consistent and was genuinely shared
        stats = store.stats()
        assert stats["hits"] > 0
        assert len(store) > 0
