"""Tests for the measurement harness (:mod:`repro.bench.harness`)."""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import ResultTable, fit_powerlaw_exponent, scaling_series, time_call


class TestTiming:
    def test_time_call_returns_a_positive_duration(self):
        elapsed = time_call(lambda: sum(range(1000)), repeats=3)
        assert elapsed >= 0

    def test_scaling_series_runs_every_size(self):
        series = scaling_series([1, 2, 4], build=lambda n: n, run=lambda n: sum(range(n)), repeats=1)
        assert [size for size, _ in series] == [1, 2, 4]
        assert all(elapsed >= 0 for _, elapsed in series)


class TestPowerlawFit:
    def test_linear_series_has_slope_one(self):
        sizes = [100, 200, 400, 800]
        times = [0.01 * s for s in sizes]
        assert fit_powerlaw_exponent(sizes, times) == pytest.approx(1.0, abs=0.01)

    def test_quadratic_series_has_slope_two(self):
        sizes = [10, 20, 40, 80]
        times = [0.001 * s * s for s in sizes]
        assert fit_powerlaw_exponent(sizes, times) == pytest.approx(2.0, abs=0.01)

    def test_degenerate_series_gives_nan(self):
        assert math.isnan(fit_powerlaw_exponent([1], [0.1]))
        assert math.isnan(fit_powerlaw_exponent([1, 2], [0.0, 0.0]))


class TestResultTable:
    def test_rendering_aligns_columns(self):
        table = ResultTable("demo", ["size", "seconds"])
        table.add_row(10, 0.012345)
        table.add_row(1000, 1.5)
        text = table.render()
        assert "demo" in text
        assert "size" in text and "seconds" in text
        assert "1000" in text

    def test_row_arity_is_checked(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = ResultTable("demo", ["value"])
        table.add_row(0.000123456)
        assert "0.0001235" in table.render()
