"""Unit tests for the materialized-view maintenance subsystem (`repro.views`).

The contract under test: after any sequence of `add_facts`/`retract_facts`,
`MaterializedEngine.model()` is bit-identical to the from-scratch oracle
`scratch_model()` (full reground + cold solve of the current rules + EDB) —
on every backend, through negation flips, support diamonds, re-adds and
budget-interrupted updates.  The randomized interleavings live in
:mod:`test_view_properties`; these are the targeted shapes.
"""

from __future__ import annotations

import pytest

from repro import parse_normal_program
from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_query
from repro.lang.terms import Constant
from repro.lp.columnar import BACKENDS
from repro.views import MaterializedEngine

CHAIN_RULES = parse_normal_program(
    """
    source(X) -> reach(X).
    reach(X), edge(X, Y) -> reach(Y).
    sink(X), not reach(X) -> unreachable(X).
    """
)

WIN_MOVE_RULES = parse_normal_program("move(X, Y), not win(Y) -> win(X).")


def atoms(*texts: str) -> list[Atom]:
    return [parse_atom(text) for text in texts]


def check(engine: MaterializedEngine, context: str = "") -> None:
    """The maintained model must equal the from-scratch oracle, bit for bit."""
    maintained, scratch = engine.model(), engine.scratch_model()
    assert maintained.true_atoms() == scratch.true_atoms(), context
    assert maintained.false_atoms() == scratch.false_atoms(), context
    assert maintained.universe() == scratch.universe(), context
    assert maintained == scratch, context


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestInsertion:
    def test_initial_model_matches_scratch(self, backend):
        engine = MaterializedEngine(
            CHAIN_RULES,
            atoms("source(a)", "edge(a,b)", "edge(b,c)", "sink(c)"),
            backend=backend,
        )
        check(engine)
        assert engine.holds(parse_atom("reach(c)"))
        assert not engine.holds(parse_atom("unreachable(c)"))

    def test_single_fact_insert_extends_the_closure(self, backend):
        engine = MaterializedEngine(
            CHAIN_RULES, atoms("source(a)", "edge(a,b)"), backend=backend
        )
        engine.add_facts(atoms("edge(b,c)"))
        check(engine, "after edge insert")
        assert engine.holds(parse_atom("reach(c)"))
        assert engine.last_stats["facts_added"] == 1

    def test_inserting_known_facts_is_a_no_op(self, backend):
        engine = MaterializedEngine(
            CHAIN_RULES, atoms("source(a)", "edge(a,b)"), backend=backend
        )
        stored_before = engine.ground_rule_count()
        stats = engine.add_facts(atoms("edge(a,b)", "source(a)"))
        assert stats["facts_added"] == 0
        assert engine.ground_rule_count() == stored_before
        check(engine)

    def test_insert_flips_a_negative_literal(self, backend):
        engine = MaterializedEngine(
            CHAIN_RULES, atoms("source(a)", "sink(b)"), backend=backend
        )
        assert engine.holds(parse_atom("unreachable(b)"))
        engine.add_facts(atoms("edge(a,b)"))
        check(engine, "negation flip on insert")
        assert not engine.holds(parse_atom("unreachable(b)"))

    def test_nonground_fact_is_rejected(self, backend):
        engine = MaterializedEngine(CHAIN_RULES, (), backend=backend)
        from repro.lang.terms import Variable

        with pytest.raises(GroundingError):
            engine.add_facts([Atom("edge", (Variable("X"), Constant("a")))])


class TestRetraction:
    def test_retract_cuts_the_chain_suffix(self, backend):
        engine = MaterializedEngine(
            CHAIN_RULES,
            atoms("source(a)", "edge(a,b)", "edge(b,c)", "edge(c,d)", "sink(d)"),
            backend=backend,
        )
        engine.retract_facts(atoms("edge(b,c)"))
        check(engine, "after mid-chain retract")
        assert engine.holds(parse_atom("reach(b)"))
        assert not engine.holds(parse_atom("reach(c)"))
        assert engine.holds(parse_atom("unreachable(d)"))
        assert engine.last_stats["overdeleted"] > 0

    def test_retracting_unknown_facts_is_a_no_op(self, backend):
        engine = MaterializedEngine(
            CHAIN_RULES, atoms("source(a)", "edge(a,b)"), backend=backend
        )
        stats = engine.retract_facts(atoms("edge(x,y)"))
        assert stats["facts_retracted"] == 0
        check(engine)

    def test_counting_keeps_diamond_supported_atoms(self, backend):
        """An atom with two independent derivations survives losing one.

        The counting fast path must keep it without overdeletion: the
        support is acyclic, so one surviving active rule is proof enough.
        """
        rules = parse_normal_program(
            """
            left(X) -> goal(X).
            right(X) -> goal(X).
            goal(X), hop(X, Y) -> goal(Y).
            """
        )
        engine = MaterializedEngine(
            rules, atoms("left(a)", "right(a)", "hop(a,b)"), backend=backend
        )
        engine.retract_facts(atoms("left(a)"))
        check(engine, "diamond retract")
        assert engine.holds(parse_atom("goal(a)"))
        assert engine.holds(parse_atom("goal(b)"))
        assert engine.last_stats["counting_kept"] > 0
        # only the EDB fact itself is overdeleted; the goal closure is kept
        assert engine.last_stats["overdeleted"] == 1

    def test_recursive_support_is_overdeleted_not_counted(self, backend):
        """Cyclic derivations must not keep each other alive (DRed, not counting)."""
        rules = parse_normal_program(
            """
            tick(X) -> on(X).
            on(X), loop(X, Y) -> on(Y).
            """
        )
        engine = MaterializedEngine(
            rules,
            atoms("tick(a)", "loop(a,b)", "loop(b,a)"),
            backend=backend,
        )
        engine.retract_facts(atoms("tick(a)"))
        check(engine, "cycle retract")
        assert not engine.holds(parse_atom("on(a)"))
        assert not engine.holds(parse_atom("on(b)"))

    def test_retract_inside_a_negative_cycle(self, backend):
        """Win/move: component-level re-solve handles negation cycles."""
        engine = MaterializedEngine(
            WIN_MOVE_RULES,
            atoms("move(a,b)", "move(b,a)", "move(b,c)", "move(c,d)"),
            backend=backend,
        )
        win_a = parse_atom("win(a)")
        model = engine.model()
        assert not model.is_true(win_a) and not model.is_false(win_a)  # undefined
        engine.retract_facts(atoms("move(b,a)"))
        check(engine, "negative-cycle retract")
        # the cycle is broken: a -> b -> c -> d resolves bottom-up
        assert engine.holds(win_a)
        assert not engine.holds(parse_atom("win(b)"))
        assert engine.holds(parse_atom("win(c)"))

    def test_retract_then_re_add_round_trips(self, backend):
        facts = atoms("source(a)", "edge(a,b)", "edge(b,c)", "sink(c)")
        engine = MaterializedEngine(CHAIN_RULES, facts, backend=backend)
        fingerprint = (
            engine.model().true_atoms(),
            engine.model().false_atoms(),
            engine.edb,
        )
        engine.retract_facts(atoms("edge(a,b)"))
        check(engine, "after retract")
        engine.add_facts(atoms("edge(a,b)"))
        check(engine, "after re-add")
        assert (
            engine.model().true_atoms(),
            engine.model().false_atoms(),
            engine.edb,
        ) == fingerprint

    def test_retract_every_fact_empties_the_model(self, backend):
        facts = atoms("source(a)", "edge(a,b)", "sink(b)")
        engine = MaterializedEngine(CHAIN_RULES, facts, backend=backend)
        engine.retract_facts(facts)
        check(engine, "after total retract")
        assert engine.model().universe() == frozenset()
        assert engine.edb == frozenset()


class TestBackendInvariance:
    def test_maintained_models_agree_across_backends(self):
        """Satellite: insertion AND deletion deltas are backend-invariant."""
        script = [
            ("add", atoms("edge(c,d)", "sink(d)")),
            ("retract", atoms("edge(a,b)")),
            ("add", atoms("edge(a,b)", "source(x)")),
            ("retract", atoms("source(a)", "sink(c)")),
        ]
        engines = {
            backend: MaterializedEngine(
                CHAIN_RULES,
                atoms("source(a)", "edge(a,b)", "edge(b,c)", "sink(c)"),
                backend=backend,
            )
            for backend in BACKENDS
        }
        reference = engines["tuple"]
        for step, (op, batch) in enumerate(script):
            for backend, engine in engines.items():
                if op == "add":
                    engine.add_facts(batch)
                else:
                    engine.retract_facts(batch)
                assert engine.model() == reference.model(), (backend, step)
            check(reference, f"step {step}")


class TestBudgets:
    def test_update_budget_exhaustion_is_resumable(self):
        """A budget-interrupted update stays staged and resumes losslessly."""
        engine = MaterializedEngine(
            CHAIN_RULES, atoms("source(n0)", "sink(n9)")
        )
        engine.max_rounds_per_update = 2
        chain = [Atom("edge", (Constant(f"n{i}"), Constant(f"n{i+1}"))) for i in range(9)]
        with pytest.raises(GroundingError):
            engine.add_facts(chain)  # 9 hops cannot ground in 2 rounds
        # queries keep failing while the budget is exhausted ...
        with pytest.raises(GroundingError):
            engine.model()
        # ... and raising the allowance resumes mid-update, losing nothing
        engine.max_rounds_per_update = 100
        check(engine, "after resume")
        assert engine.holds(parse_atom("reach(n9)"))

    def test_atom_budget_applies_to_updates(self):
        rules = parse_normal_program("grow(X) -> grow(f(X)).")
        engine = MaterializedEngine(rules, (), max_atoms=50, check_termination=False)
        with pytest.raises(GroundingError):
            engine.add_facts(atoms("grow(a)"))


class TestQueries:
    def test_answer_and_holds_track_updates(self, backend):
        engine = MaterializedEngine(
            CHAIN_RULES, atoms("source(a)", "edge(a,b)"), backend=backend
        )
        assert engine.answer(parse_query("? reach(X)")) == {
            (Constant("a"),),
            (Constant("b"),),
        }
        engine.add_facts(atoms("edge(b,c)"))
        assert (Constant("c"),) in engine.answer(parse_query("? reach(X)"))
        engine.retract_facts(atoms("edge(a,b)"))
        assert engine.answer(parse_query("? reach(X)")) == {(Constant("a"),)}

    def test_text_program_and_text_facts(self):
        engine = MaterializedEngine(
            "edge(X, Y) -> linked(X, Y). edge(a, b).",
        )
        assert engine.holds("? linked(a, b)")
        engine.add_facts("edge(b, c).")
        assert engine.holds("? linked(b, c)")
        engine.retract_facts("edge(a, b).")
        assert not engine.holds("? linked(a, b)")
        check(engine)

    def test_repr_mentions_activity(self):
        engine = MaterializedEngine(CHAIN_RULES, atoms("source(a)"))
        assert "active" in repr(engine)
