"""Property tests: view maintenance changes nothing, ever.

Random safe normal programs × random interleaved insert/retract sequences
must leave the maintained `MaterializedEngine` model bit-identical to the
from-scratch oracle (full reground of the current rules + EDB, cold solve)
at *every* step — on every grounding backend, and straight through
budget-exhausted, resumed updates.  This is the view-maintenance counterpart
of :mod:`test_incremental_properties` (rule growth) and
:mod:`test_columnar_properties` (backend choice): the retained from-scratch
rebuild is the reference, the maintained path must be indistinguishable.

The `@pytest.mark.stress` churn test at the bottom runs a long random
add/retract workload over the chain benchmark shape (only with
``-m stress``, like the rest of the stress tier).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.exceptions import GroundingError
from repro.lp.columnar import BACKENDS, make_grounder
from repro.lp.wfs import well_founded_model
from repro.views import MaterializedEngine

from strategies import ground_atoms, safe_normal_workloads

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Function heads can make the relevant grounding infinite; draws whose
#: *full* fact pool does not saturate within this budget are discarded
#: (grounding is monotone in the EDB, so every interleaving state of a
#: saturating pool saturates too).
MAX_ROUNDS = 8


@st.composite
def update_scripts(draw):
    """A workload plus an interleaved insert/retract script over a fact pool.

    The pool is the workload's EDB plus a few extra random ground atoms, so
    retractions hit both present and absent facts and insertions both new
    and already-derivable ones.
    """
    program, edb = draw(st.shared(safe_normal_workloads(), key="workload"))
    pool = list(dict.fromkeys(edb + draw(st.lists(ground_atoms, max_size=4))))
    assume(pool)
    script = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "retract"]),
                st.integers(min_value=0, max_value=len(pool) - 1),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return program, edb, [(op, pool[i]) for op, i in script]


def _assume_pool_saturates(program, facts):
    """Discard draws whose grounding would not terminate (function heads)."""
    probe = make_grounder(program, facts, backend="tuple")
    assume(probe.run(max_rounds=MAX_ROUNDS, raise_on_budget=False))
    return probe


def _check_step(engine, context):
    maintained = engine.model()
    oracle = engine.scratch_model()
    assert maintained.true_atoms() == oracle.true_atoms(), context
    assert maintained.false_atoms() == oracle.false_atoms(), context
    assert maintained.universe() == oracle.universe(), context


@given(data=update_scripts(), backend=st.sampled_from(BACKENDS))
@settings(max_examples=60, **COMMON_SETTINGS)
def test_maintained_equals_scratch_at_every_step(data, backend):
    """add/retract interleavings are invisible next to from-scratch rebuilds."""
    program, edb, script = data
    _assume_pool_saturates(program, edb + [fact for _, fact in script])
    engine = MaterializedEngine(program, edb, backend=backend, check_termination=False)
    _check_step(engine, "init")
    for step, (op, fact) in enumerate(script):
        if op == "add":
            engine.add_facts([fact])
        else:
            engine.retract_facts([fact])
        _check_step(engine, f"step {step}: {op} {fact}")


@given(data=update_scripts())
@settings(max_examples=30, **COMMON_SETTINGS)
def test_maintained_models_are_backend_invariant(data):
    """The maintained model never depends on the grounding backend."""
    program, edb, script = data
    _assume_pool_saturates(program, edb + [fact for _, fact in script])
    engines = [
        MaterializedEngine(program, edb, backend=backend, check_termination=False)
        for backend in BACKENDS
    ]
    reference = engines[0]
    for step, (op, fact) in enumerate(script):
        for engine in engines:
            if op == "add":
                engine.add_facts([fact])
            else:
                engine.retract_facts([fact])
        for engine, backend in zip(engines[1:], BACKENDS[1:]):
            assert engine.model() == reference.model(), (backend, step)


@given(
    data=update_scripts(),
    budget=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=30, **COMMON_SETTINGS)
def test_budget_exhausted_updates_resume_losslessly(data, budget):
    """A mid-update budget interruption is invisible once the update finishes.

    Updates run under a tiny per-update round allowance; whenever one
    exhausts it, the allowance is raised and the *query path* resumes the
    staged update.  The final model must still match the oracle at every
    step — nothing staged is lost or double-applied.
    """
    program, edb, script = data
    _assume_pool_saturates(program, edb + [fact for _, fact in script])
    engine = MaterializedEngine(program, edb, check_termination=False)
    for step, (op, fact) in enumerate(script):
        engine.max_rounds_per_update = budget
        try:
            if op == "add":
                engine.add_facts([fact])
            else:
                engine.retract_facts([fact])
        except GroundingError:
            pass
        while True:
            try:
                engine.model()
                break
            except GroundingError:
                engine.max_rounds_per_update += 1
        _check_step(engine, f"step {step}: {op} {fact} (budget {budget})")


@given(data=update_scripts())
@settings(max_examples=30, **COMMON_SETTINGS)
def test_maintained_model_equals_fresh_engine(data):
    """The warm engine is indistinguishable from a cold one on the same EDB."""
    program, edb, script = data
    _assume_pool_saturates(program, edb + [fact for _, fact in script])
    engine = MaterializedEngine(program, edb, check_termination=False)
    current = set(edb)
    for op, fact in script:
        if op == "add":
            engine.add_facts([fact])
            current.add(fact)
        else:
            engine.retract_facts([fact])
            current.discard(fact)
    fresh = MaterializedEngine(program, sorted(current, key=str), check_termination=False)
    assert engine.model() == fresh.model()
    assert engine.edb == fresh.edb


@pytest.mark.stress
def test_churn_workload_stays_identical_to_scratch():
    """Hundreds of random single-fact updates over the chain workload."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
    from bench_view_maintenance import RULES, chain_facts

    from repro.lang.atoms import Atom

    from bench_view_maintenance import CHAIN_LENGTH, node

    rng = random.Random(7)
    facts = chain_facts(12)
    engine = MaterializedEngine(RULES, facts)
    # shortcut edges give mid-chain atoms diamond support, so churn exercises
    # the counting fast path as well as plain DRed overdeletion
    shortcuts = [
        Atom("edge", (node(chain, 0), node(chain, CHAIN_LENGTH // 2)))
        for chain in range(12)
    ]
    pool = list(facts) + shortcuts
    present = set(facts)
    for step in range(400):
        fact = rng.choice(pool)
        if fact in present:
            engine.retract_facts([fact])
            present.discard(fact)
        else:
            engine.add_facts([fact])
            present.add(fact)
        if step % 20 == 0:
            _check_step(engine, f"churn step {step}")
    _check_step(engine, "churn end")
    assert engine.total_stats["overdeleted"] > 0
    # deterministic coda: with every chain restored and shortcut-supported,
    # cutting each chain right below the shortcut target must take the
    # counting fast path (two independent supports, acyclic)
    engine.add_facts([fact for fact in pool if fact not in present])
    _check_step(engine, "after restore")
    kept_before = engine.total_stats["counting_kept"]
    engine.retract_facts(
        [
            Atom("edge", (node(chain, CHAIN_LENGTH // 2 - 1), node(chain, CHAIN_LENGTH // 2)))
            for chain in range(12)
        ]
    )
    _check_step(engine, "after shortcut-supported cut")
    assert engine.total_stats["counting_kept"] > kept_before
