"""Property tests: incremental fixpoint maintenance changes nothing, ever.

Random ground programs grown in random chunks must yield, at every step, the
exact condensation partition (with a valid dependencies-first order) and the
exact well-founded model of the from-scratch path; random guarded Datalog±
workloads × deepening schedules × mid-schedule budget resumes must make the
``incremental=True`` engine indistinguishable from the ``incremental=False``
oracle.  This is the incremental counterpart of
:mod:`test_agenda_properties` — the from-scratch SCC-modular computation is
the retained reference, exactly as ``saturation="scan"`` is for the agenda.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.segments import clear_segment_stores
from repro.core.engine import WellFoundedEngine
from repro.exceptions import GroundingError
from repro.lp.fixpoint import IncrementalCondensation
from repro.lp.grounding import GroundProgram
from repro.lp.wfs import well_founded_model, well_founded_model_incremental

from strategies import ground_programs, guarded_workloads

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def chunked_ground_programs(draw):
    """A random ground program plus a random partition of it into chunks."""
    program = draw(ground_programs())
    rules = list(program.rules())
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(rules)),
                min_size=0,
                max_size=4,
            )
        )
    )
    chunks = []
    start = 0
    for boundary in boundaries + [len(rules)]:
        chunks.append(rules[start:boundary])
        start = boundary
    return chunks


def assert_valid_condensation(condensation: IncrementalCondensation, program):
    index = program.index()
    incremental = {frozenset(c) for c in condensation.components_ids()}
    reference = {frozenset(c) for c in index.dependency_components_ids()}
    assert incremental == reference
    position = {cid: offset for offset, cid in enumerate(condensation.order())}
    for rule_id in range(len(index)):
        head_comp = condensation.component_of_atom(index.head_id(rule_id))
        for atom_id in (*index.pos_ids(rule_id), *index.neg_ids(rule_id)):
            assert position[condensation.component_of_atom(atom_id)] <= position[
                head_comp
            ]


@given(chunks=chunked_ground_programs())
@settings(max_examples=150, **COMMON_SETTINGS)
def test_incremental_condensation_equals_tarjan_at_every_step(chunks):
    program = GroundProgram()
    condensation = IncrementalCondensation(program.index())
    live = set()
    for chunk in chunks:
        program.update(chunk)
        update = condensation.refresh()
        # reported component ids stay consistent: removed ids were live,
        # dirty ids are live now
        assert update.removed <= live
        live = set(condensation.order())
        assert update.dirty <= live
        assert_valid_condensation(condensation, program)


@given(chunks=chunked_ground_programs())
@settings(max_examples=150, **COMMON_SETTINGS)
def test_incremental_wfs_equals_scratch_at_every_step(chunks):
    program = GroundProgram()
    state = None
    for chunk in chunks:
        program.update(chunk)
        model, state = well_founded_model_incremental(program, state)
        scratch = well_founded_model(GroundProgram(program.rules()))
        assert model.true_atoms() == scratch.true_atoms()
        assert model.false_atoms() == scratch.false_atoms()
        assert model.undefined_atoms() == scratch.undefined_atoms()
        assert model.universe() == scratch.universe()


# ---------------------------------------------------------------------------
# Engine level: the deepening schedule is the growth schedule
# ---------------------------------------------------------------------------


def observable_state(engine: WellFoundedEngine):
    try:
        model = engine.model()
    except GroundingError:
        return "node-budget-exceeded"
    forest = model.forest()
    labels = forest.labels()
    return (
        labels,
        frozenset(forest.edge_rules()),
        {atom: forest.level_of_atom(atom) for atom in labels},
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        (model.depth, model.converged, model.iterations),
    )


@given(
    workload=guarded_workloads(),
    segment_cache=st.booleans(),
    initial_depth=st.integers(min_value=1, max_value=4),
    depth_step=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, **COMMON_SETTINGS)
def test_incremental_engine_equals_scratch_engine(
    workload, segment_cache, initial_depth, depth_step
):
    """Any deepening schedule × cache configuration agrees with the oracle."""
    program, database = workload
    options = dict(
        initial_depth=initial_depth,
        depth_step=depth_step,
        max_depth=initial_depth + 3 * depth_step,
        max_nodes=2_000,
        segment_cache=segment_cache,
    )
    clear_segment_stores()
    scratch = WellFoundedEngine(program, database, incremental=False, **options)
    expected = observable_state(scratch)
    clear_segment_stores()
    incremental = WellFoundedEngine(program, database, incremental=True, **options)
    assert observable_state(incremental) == expected


@given(workload=guarded_workloads())
@settings(max_examples=25, **COMMON_SETTINGS)
def test_incremental_engine_budget_resume_equals_scratch(workload):
    """Mid-schedule budget exhaustion and resume agree with the oracle.

    The interrupted deepening commits the chase to some bound; the resumed
    incremental run folds the partially grown ground program forward, which
    must land on exactly the observables of the resumed from-scratch run.
    """
    program, database = workload
    options = dict(max_depth=13, max_nodes=30, segment_cache=False)
    clear_segment_stores()
    scratch = WellFoundedEngine(program, database, incremental=False, **options)
    first_scratch = observable_state(scratch)
    clear_segment_stores()
    incremental = WellFoundedEngine(program, database, incremental=True, **options)
    assert observable_state(incremental) == first_scratch
    if first_scratch != "node-budget-exceeded":
        return  # the workload fits the tight budget; nothing left to resume
    # a retry with an unchanged budget re-raises in both modes
    assert observable_state(incremental) == "node-budget-exceeded"
    scratch.max_nodes = 2_000
    incremental.max_nodes = 2_000
    assert observable_state(incremental) == observable_state(scratch)
