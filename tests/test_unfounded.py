"""Unit tests for greatest unfounded sets (:mod:`repro.lp.unfounded`).

The examples follow Sec. 2.6 of the paper and the original Van Gelder / Ross /
Schlipf definitions: condition (i) — a positive body atom is false in
``I ∪ ¬.U`` — and condition (ii) — a negative body atom is true in ``I``.
"""

from __future__ import annotations

from repro.lang.atoms import Atom
from repro.lang.parser import parse_normal_program
from repro.lang.terms import Constant
from repro.lp.grounding import GroundProgram, relevant_grounding
from repro.lp.interpretation import Interpretation
from repro.lp.unfounded import greatest_unfounded_set, is_unfounded_set, possibly_true_atoms


def atom(name):
    return Atom(name, ())


def ground(text):
    """Ground a *propositional* program verbatim.

    The unfounded-set definition quantifies over all rules of ``ground(P)``,
    including rules whose bodies are not derivable; relevant grounding would
    drop exactly those, so these tests keep every rule by using the (already
    ground) propositional rules directly.
    """
    program = parse_normal_program(text)
    ground_program = GroundProgram()
    for rule in program:
        ground_program.add(rule)
    return ground_program


def ground_relevant(text):
    """Relevant grounding, for the non-propositional test programs."""
    return relevant_grounding(parse_normal_program(text))


class TestGreatestUnfoundedSet:
    def test_atom_with_no_rule_is_unfounded(self):
        program = ground("p. r -> q.")
        # q depends on r, which has no rule at all; both are unfounded w.r.t. the
        # empty interpretation, p is not (it is a fact).
        unfounded = greatest_unfounded_set(program, Interpretation.empty())
        assert atom("q") in unfounded and atom("r") in unfounded
        assert atom("p") not in unfounded

    def test_positive_cycle_is_unfounded(self):
        program = ground("q -> p. p -> q.")
        unfounded = greatest_unfounded_set(program, Interpretation.empty())
        assert {atom("p"), atom("q")} <= unfounded

    def test_fact_supported_chain_is_not_unfounded(self):
        program = ground("p. p -> q. q -> r.")
        unfounded = greatest_unfounded_set(program, Interpretation.empty())
        assert unfounded == set()

    def test_condition_ii_negative_body_true_in_interpretation(self):
        program = ground("p. not q -> r. ")
        # With q true in I, the only rule for r is blocked, so r is unfounded.
        interpretation = Interpretation([atom("q")])
        unfounded = greatest_unfounded_set(program, interpretation)
        assert atom("r") in unfounded

    def test_condition_ii_requires_truth_not_just_undefinedness(self):
        program = ground("p. not q -> r. ")
        # q undefined: the rule for r is not blocked, r is not unfounded.
        unfounded = greatest_unfounded_set(program, Interpretation.empty())
        assert atom("r") not in unfounded

    def test_condition_i_false_positive_body(self):
        program = ground("q -> p. ")
        interpretation = Interpretation([], [atom("q")])
        unfounded = greatest_unfounded_set(program, interpretation)
        assert atom("p") in unfounded

    def test_unfoundedness_propagates_through_the_set_itself(self):
        # a <- b, b <- a, and c <- a: all three are simultaneously unfounded
        # because condition (i) may refer to ¬.U itself.
        program = ground("b -> a. a -> b. a -> c.")
        unfounded = greatest_unfounded_set(program, Interpretation.empty())
        assert {atom("a"), atom("b"), atom("c")} <= unfounded

    def test_explicit_universe_extends_the_result(self):
        program = ground("p.")
        extra = Atom("extra", (Constant("x"),))
        unfounded = greatest_unfounded_set(
            program, Interpretation.empty(), universe=[extra, atom("p")]
        )
        assert extra in unfounded and atom("p") not in unfounded


class TestUnfoundedSetChecker:
    def test_greatest_unfounded_set_is_an_unfounded_set(self):
        program = ground_relevant(
            """
            move(a, b). move(b, a). move(b, c). move(c, d).
            move(X, Y), not win(Y) -> win(X).
            """
        )
        for interpretation in (
            Interpretation.empty(),
            Interpretation([Atom("win", (Constant("c"),))]),
        ):
            unfounded = greatest_unfounded_set(program, interpretation)
            assert is_unfounded_set(unfounded, program, interpretation)

    def test_non_unfounded_candidate_is_rejected(self):
        program = ground("p. p -> q.")
        assert not is_unfounded_set({atom("q")}, program, Interpretation.empty())

    def test_possibly_true_is_the_complement(self):
        program = ground("p. p -> q. r -> s.")
        possible = possibly_true_atoms(program, Interpretation.empty())
        unfounded = greatest_unfounded_set(program, Interpretation.empty())
        assert possible == {atom("p"), atom("q")}
        assert unfounded == set(program.atoms()) - possible
