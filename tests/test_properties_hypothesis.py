"""Property-based tests (hypothesis) for the core data structures and the WFS.

The invariants checked here are the ones the rest of the library leans on:

* substitution application is compositional and the identity on ground terms;
* matching produces substitutions that actually reproduce the target atom;
* the canonical type key is invariant under renaming of nulls;
* for random finite ground normal programs, the well-founded model is
  consistent, its two constructions (unfounded sets vs. alternating fixpoint)
  agree, it approximates every stable model, and it is total whenever the
  program happens to be stratified.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.lang.atoms import Atom, Literal
from repro.lang.substitution import Substitution, match
from repro.lang.terms import Constant, FunctionTerm, Variable
from repro.lp.stable import is_stable_model, stable_models
from repro.lp.stratification import is_stratified
from repro.lp.unfounded import (
    greatest_unfounded_set,
    is_unfounded_set,
    possibly_true_atoms,
    possibly_true_atoms_naive,
)
from repro.lp.interpretation import Interpretation
from repro.lp.wfs import (
    well_founded_model,
    well_founded_model_alternating,
    well_founded_model_naive,
)
from repro.chase.types import canonical_type_key

from strategies import atoms, ground_atoms, ground_programs, ground_terms, terms


# ---------------------------------------------------------------------------
# Substitutions and matching
# ---------------------------------------------------------------------------


class TestSubstitutionProperties:
    @given(ground_terms)
    def test_substitution_is_identity_on_ground_terms(self, term):
        assert Substitution({Variable("X"): Constant("a")}).apply_term(term) == term

    @given(terms(), st.sampled_from([Constant("a"), Constant("b")]))
    def test_composition_agrees_with_sequential_application(self, term, image):
        first = Substitution({Variable("X"): Variable("Y")})
        second = Substitution({Variable("Y"): image})
        assert first.compose(second).apply_term(term) == second.apply_term(
            first.apply_term(term)
        )

    @given(atoms, ground_atoms)
    def test_successful_match_reproduces_the_target(self, pattern, target):
        result = match(pattern, target)
        if result is not None:
            assert result.apply_atom(pattern) == target


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class TestTypeKeyProperties:
    @given(st.lists(ground_atoms, max_size=4), st.booleans())
    def test_type_key_is_invariant_under_null_renaming(self, atom_list, polarity):
        if not atom_list:
            return
        anchor = atom_list[0]
        literals = [Literal(a, polarity) for a in atom_list]

        def rename(term):
            if isinstance(term, FunctionTerm):
                return FunctionTerm("renamed_" + term.function, tuple(rename(t) for t in term.args))
            return term

        renamed_anchor = Atom(anchor.predicate, tuple(rename(t) for t in anchor.args))
        renamed_literals = [
            Literal(Atom(l.atom.predicate, tuple(rename(t) for t in l.atom.args)), l.positive)
            for l in literals
        ]
        key = canonical_type_key(anchor, [l for l in literals if set(l.atom.args) <= set(anchor.args)])
        renamed_key = canonical_type_key(
            renamed_anchor,
            [l for l in renamed_literals if set(l.atom.args) <= set(renamed_anchor.args)],
        )
        assert key == renamed_key


# ---------------------------------------------------------------------------
# Well-founded semantics of random ground programs
# ---------------------------------------------------------------------------


class TestWfsProperties:
    @settings(max_examples=60, deadline=None)
    @given(ground_programs())
    def test_model_is_consistent_and_inside_the_universe(self, program):
        model = well_founded_model(program)
        assert not (model.true_atoms() & model.false_atoms())
        assert model.true_atoms() <= program.atoms()
        assert model.false_atoms() <= program.atoms()

    @settings(max_examples=60, deadline=None)
    @given(ground_programs())
    def test_unfounded_and_alternating_constructions_agree(self, program):
        via_unfounded = well_founded_model(program)
        via_alternating = well_founded_model_alternating(program)
        assert via_unfounded.true_atoms() == via_alternating.true_atoms()
        assert via_unfounded.false_atoms() == via_alternating.false_atoms()

    @settings(max_examples=80, deadline=None)
    @given(ground_programs())
    def test_indexed_scc_evaluation_matches_the_naive_reference(self, program):
        indexed = well_founded_model(program)
        naive = well_founded_model_naive(program)
        assert indexed.true_atoms() == naive.true_atoms()
        assert indexed.false_atoms() == naive.false_atoms()

    @settings(max_examples=80, deadline=None)
    @given(ground_programs())
    def test_naive_and_alternating_constructions_agree(self, program):
        naive = well_founded_model_naive(program)
        alternating = well_founded_model_alternating(program)
        assert naive.true_atoms() == alternating.true_atoms()
        assert naive.false_atoms() == alternating.false_atoms()

    @settings(max_examples=60, deadline=None)
    @given(ground_programs())
    def test_worklist_possibly_true_matches_the_naive_reference(self, program):
        model = well_founded_model(program)
        for interpretation in (
            Interpretation.empty(),
            Interpretation(model.true_atoms(), model.false_atoms()),
        ):
            assert possibly_true_atoms(program, interpretation) == possibly_true_atoms_naive(
                program, interpretation
            )

    @settings(max_examples=40, deadline=None)
    @given(ground_programs())
    def test_wfs_approximates_every_stable_model(self, program):
        model = well_founded_model(program)
        for stable in stable_models(program):
            assert model.true_atoms() <= stable
            assert not (model.false_atoms() & stable)

    @settings(max_examples=40, deadline=None)
    @given(ground_programs())
    def test_total_wfs_is_a_stable_model(self, program):
        model = well_founded_model(program)
        if model.is_total():
            assert is_stable_model(program, set(model.true_atoms()))

    @settings(max_examples=40, deadline=None)
    @given(ground_programs())
    def test_stratified_programs_have_a_total_wfs(self, program):
        if is_stratified(program):
            assert well_founded_model(program).is_total()

    @settings(max_examples=40, deadline=None)
    @given(ground_programs())
    def test_greatest_unfounded_set_satisfies_the_definition(self, program):
        model = well_founded_model(program)
        interpretation = Interpretation(model.true_atoms(), model.false_atoms())
        unfounded = greatest_unfounded_set(program, interpretation)
        assert is_unfounded_set(unfounded, program, interpretation)
        assert model.false_atoms() <= unfounded
