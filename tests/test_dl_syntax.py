"""Tests for the DL-Lite_{R,⊓,not} abstract syntax (:mod:`repro.dl.syntax`)."""

from __future__ import annotations

import pytest

from repro.exceptions import TranslationError
from repro.dl.syntax import (
    ABox,
    AtomicConcept,
    ConceptAssertion,
    ConceptInclusion,
    ConceptLiteral,
    ExistentialConcept,
    Ontology,
    Role,
    RoleAssertion,
    RoleInclusion,
    TBox,
)


class TestRolesAndConcepts:
    def test_role_inversion(self):
        role = Role("advises")
        assert role.inverted() == Role("advises", True)
        assert role.inverted().inverted() == role
        assert str(role.inverted()) == "advises-"

    def test_basic_concept_strings(self):
        assert str(AtomicConcept("Person")) == "Person"
        assert str(ExistentialConcept(Role("worksFor"))) == "exists worksFor"
        assert str(ConceptLiteral(AtomicConcept("A"), False)) == "not A"


class TestConceptInclusions:
    def test_lhs_must_be_non_empty(self):
        with pytest.raises(TranslationError):
            ConceptInclusion((), AtomicConcept("A"))

    def test_lhs_needs_a_positive_conjunct(self):
        with pytest.raises(TranslationError):
            ConceptInclusion(
                (ConceptLiteral(AtomicConcept("A"), False),), AtomicConcept("B")
            )

    def test_positive_and_negative_lhs_views(self):
        axiom = ConceptInclusion(
            (
                ConceptLiteral(AtomicConcept("Person")),
                ConceptLiteral(ExistentialConcept(Role("employeeID")), False),
            ),
            AtomicConcept("JobSeeker"),
        )
        assert len(axiom.positive_lhs()) == 1
        assert len(axiom.negative_lhs()) == 1


class TestBoxes:
    def test_tbox_partitions_axioms(self):
        tbox = TBox(
            [
                ConceptInclusion((ConceptLiteral(AtomicConcept("A")),), AtomicConcept("B")),
                RoleInclusion(Role("r"), Role("s")),
            ]
        )
        assert len(tbox.concept_inclusions()) == 1
        assert len(tbox.role_inclusions()) == 1
        assert len(tbox) == 2

    def test_abox_individuals(self):
        abox = ABox()
        abox.assert_concept("Person", "alice")
        abox.assert_role("knows", "alice", "bob")
        assert abox.individuals() == {"alice", "bob"}
        assert len(abox) == 2


class TestOntologyBuilder:
    def test_string_shorthands(self):
        ontology = Ontology()
        axiom = ontology.subclass(["Person", "not Employed", ("not", "exists EmployeeID")],
                                  "exists JobSeekerID")
        assert len(axiom.positive_lhs()) == 1
        assert len(axiom.negative_lhs()) == 2
        rhs = axiom.rhs
        assert isinstance(rhs, ExistentialConcept) and rhs.role == Role("JobSeekerID")

    def test_single_concept_lhs(self):
        ontology = Ontology()
        axiom = ontology.subclass("ConferencePaper", "Article")
        assert axiom.lhs == (ConceptLiteral(AtomicConcept("ConferencePaper")),)

    def test_inverse_roles_in_strings(self):
        ontology = Ontology()
        axiom = ontology.subclass("exists EmployeeID-", "ValidID")
        concept = axiom.lhs[0].concept
        assert isinstance(concept, ExistentialConcept) and concept.role.inverse

    def test_subrole_parsing(self):
        ontology = Ontology()
        axiom = ontology.subrole("Advises", "Mentors-")
        assert axiom.lhs == Role("Advises") and axiom.rhs == Role("Mentors", True)

    def test_name_collections(self):
        ontology = Ontology()
        ontology.subclass("Scientist", "exists IsAuthorOf")
        ontology.subrole("IsAuthorOf", "Contributes")
        ontology.abox.assert_concept("Scientist", "john")
        assert "Scientist" in ontology.concept_names()
        assert {"IsAuthorOf", "Contributes"} <= ontology.role_names()

    def test_malformed_literal_tuple_is_rejected(self):
        with pytest.raises(TranslationError):
            Ontology().subclass([("nope", "A")], "B")
