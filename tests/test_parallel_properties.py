"""Property tests: parallel scheduling changes nothing, ever.

Random ground programs — and random chunked growth schedules over them —
must make every ``workers > 1`` configuration indistinguishable from the
serial loop, which remains the differential oracle: identical true/false/
undefined sets, identical iteration counts, identical resolve/reuse stats.
Random guarded Datalog± workloads pin the same invariant end-to-end through
:class:`~repro.core.engine.WellFoundedEngine`.  This is the parallel
counterpart of :mod:`test_incremental_properties`.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import WellFoundedEngine
from repro.lp.grounding import GroundProgram
from repro.lp.wfs import IncrementalWFS, well_founded_model

from strategies import ground_programs, guarded_workloads

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def model_signature(model):
    return (
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        model.iterations,
    )


@st.composite
def chunked_ground_programs(draw):
    """A random ground program plus a random partition of it into chunks."""
    program = draw(ground_programs())
    rules = list(program.rules())
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(rules)),
                min_size=0,
                max_size=3,
            )
        )
    )
    chunks = []
    start = 0
    for boundary in boundaries + [len(rules)]:
        chunks.append(rules[start:boundary])
        start = boundary
    return chunks


@given(program=ground_programs(), workers=st.sampled_from([2, 3, 8]))
@settings(max_examples=120, **COMMON_SETTINGS)
def test_scratch_parallel_equals_serial(program, workers):
    serial = well_founded_model(program)
    parallel = well_founded_model(program, workers=workers, executor="thread")
    assert model_signature(parallel) == model_signature(serial)


@given(chunks=chunked_ground_programs(), workers=st.sampled_from([2, 4]))
@settings(max_examples=60, **COMMON_SETTINGS)
def test_incremental_parallel_tracks_serial_growth(chunks, workers):
    serial_program, parallel_program = GroundProgram(), GroundProgram()
    serial_state = IncrementalWFS(serial_program)
    parallel_state = IncrementalWFS(
        parallel_program, workers=workers, executor="thread"
    )
    for chunk in chunks:
        serial_program.update(chunk)
        parallel_program.update(chunk)
        assert model_signature(parallel_state.model()) == model_signature(
            serial_state.model()
        )
        assert parallel_state.last_resolved == serial_state.last_resolved
        assert parallel_state.last_reused == serial_state.last_reused
        assert parallel_state.last_changed_atoms == serial_state.last_changed_atoms


@given(workload=guarded_workloads())
@settings(max_examples=25, **COMMON_SETTINGS)
def test_engine_parallel_equals_serial(workload):
    program, database = workload
    serial = WellFoundedEngine(program, database, workers=1)
    parallel = WellFoundedEngine(program, database, workers=4)
    serial_model, parallel_model = serial.model(), parallel.model()
    assert parallel_model.true_atoms() == serial_model.true_atoms()
    assert parallel_model.false_atoms() == serial_model.false_atoms()
    assert parallel_model.undefined_atoms() == serial_model.undefined_atoms()
    assert parallel_model.converged == serial_model.converged
