"""Property tests for the static-analysis subsystem.

Four invariants, each over random programs:

* **Order invariance** — the analyzer is a function of the rule *set*:
  permuting the rules changes neither the termination verdict nor the
  structural verdicts nor the set of diagnostic codes.
* **Hierarchy containment** — acceptance by a criterion implies acceptance
  by every wider criterion, on arbitrary rule sets (the pinned examples in
  ``test_analysis.py`` show the containments are strict; here hypothesis
  shows they never invert).
* **Clean programs evaluate** — a program the analyzer passes without
  errors and with a termination certificate really does saturate and solve
  under the engines (the analyzer never green-lights a program the engines
  choke on).
* **Planning is invisible** — analyzer-driven engine planning (magic
  rewriting with the widened eligibility test, fallbacks, run-and-check)
  never changes an answer relative to the forced-classic path.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CRITERIA,
    analyze,
    analyze_dependencies,
    is_jointly_acyclic,
    is_super_weakly_acyclic,
    is_weakly_acyclic,
    termination_verdict,
)
from repro.core.engine import WellFoundedEngine
from repro.lang.atoms import Atom
from repro.lang.skolem import skolemize_program

from strategies import guarded_workloads, safe_normal_workloads

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _shuffled(rules, seed):
    rules = list(rules)
    random.Random(seed).shuffle(rules)
    return rules


@given(workload=safe_normal_workloads(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=80, **COMMON_SETTINGS)
def test_verdicts_are_rule_order_invariant(workload, seed):
    program, edb = workload
    rules = list(program.rules())
    permuted = _shuffled(rules, seed)
    base = analyze(rules, edb)
    other = analyze(permuted, edb)
    assert base.verdicts["termination_criterion"] == other.verdicts["termination_criterion"]
    assert base.verdicts["stratified"] == other.verdicts["stratified"]
    assert base.verdicts["recursive"] == other.verdicts["recursive"]
    assert base.verdicts["plan"] == other.verdicts["plan"]
    assert base.codes() == other.codes()


@given(workload=guarded_workloads(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, **COMMON_SETTINGS)
def test_termination_verdict_is_order_invariant_on_guarded_programs(workload, seed):
    program, _ = workload
    rules = list(skolemize_program(program).rules())
    assert (
        termination_verdict(rules).criterion
        == termination_verdict(_shuffled(rules, seed)).criterion
    )


@given(workload=safe_normal_workloads())
@settings(max_examples=80, **COMMON_SETTINGS)
def test_hierarchy_containment_never_inverts(workload):
    program, _ = workload
    rules = list(program.rules())
    if is_weakly_acyclic(rules):
        assert is_jointly_acyclic(rules)
    if is_jointly_acyclic(rules):
        assert is_super_weakly_acyclic(rules)
    verdict = termination_verdict(rules)
    if verdict.criterion is not None:
        # accepts_at_least is monotone along the hierarchy
        index = CRITERIA.index(verdict.criterion)
        for wider in CRITERIA[index:]:
            assert verdict.accepts_at_least(wider)
        for narrower in CRITERIA[:index]:
            assert not verdict.accepts_at_least(narrower)


@given(workload=guarded_workloads())
@settings(max_examples=40, **COMMON_SETTINGS)
def test_clean_programs_evaluate(workload):
    """No errors + a termination certificate ⇒ the engine solves the program."""
    program, database = workload
    report = analyze(program, database)
    assert not report.errors(), report.render()
    if not report.verdicts["chase_terminates"]:
        return
    engine = WellFoundedEngine(program, database, max_nodes=30_000)
    model = engine.model()
    assert model.converged
    # the stats summary agrees with the standalone report
    engine.holds(Atom("no_such_predicate", ()), rewrite=False)
    summary = engine.last_query_stats["analysis"]
    assert summary["termination"] == report.verdicts["termination_criterion"]
    assert summary["chase_terminates"] is True


@given(workload=guarded_workloads(), data=st.data())
@settings(max_examples=30, **COMMON_SETTINGS)
def test_planning_never_changes_answers(workload, data):
    """Magic/fallback planning is answer-invisible next to forced-classic."""
    program, database = workload
    report = analyze(program, database)
    if not report.verdicts["chase_terminates"]:
        return
    engine = WellFoundedEngine(program, database, max_nodes=30_000)
    model = engine.model()
    universe = sorted(
        model.true_atoms() | model.false_atoms() | model.undefined_atoms(), key=str
    )
    if not universe:
        return
    atoms = data.draw(
        st.lists(st.sampled_from(universe), min_size=1, max_size=4, unique=True)
    )
    for atom in atoms:
        assert engine.holds(atom, rewrite=True) == engine.holds(atom, rewrite=False)


@given(workload=safe_normal_workloads(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, **COMMON_SETTINGS)
def test_dependency_analysis_is_order_invariant(workload, seed):
    program, _ = workload
    rules = list(program.rules())
    base = analyze_dependencies(rules)
    other = analyze_dependencies(_shuffled(rules, seed))
    assert base.predicates == other.predicates
    assert base.positive_edges == other.positive_edges
    assert base.negative_edges == other.negative_edges
    assert base.stratified == other.stratified
    assert base.negative_cycle == other.negative_cycle
