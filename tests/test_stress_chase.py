"""Slow stress tests for agenda-based chase saturation (``-m stress`` only).

These runs push the chain and ontology workload generators to chase depth
≥ 32, inject node-budget exhaustion in the middle of saturation, and check
the resumability contract hardened in this PR:

* an interrupted saturation pass re-raises on retry (never reports a
  partially expanded forest as converged — the ROADMAP budget-retry bug);
* raising ``max_nodes`` resumes from the partial forest and lands on exactly
  the state a fresh, unbudgeted engine computes — under both saturation
  modes and with the segment cache on and off.

The module is marked ``stress`` and auto-skipped by ``tests/conftest.py``
unless the marker is selected; CI runs it in the scheduled /
workflow-dispatch ``stress`` job so tier-1 stays fast.
"""

from __future__ import annotations

import pytest

from repro.bench.generators import (
    chain_reachability_workload,
    employment_workload,
    university_ontology,
)
from repro.chase.engine import GuardedChaseEngine
from repro.chase.segments import clear_segment_stores
from repro.core.engine import WellFoundedEngine
from repro.dl.translate import translate_ontology
from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.program import Database, DatalogPMProgram
from repro.lang.rules import NTGD
from repro.lang.skolem import skolemize_program
from repro.lang.terms import Constant, Variable

pytestmark = pytest.mark.stress

#: Depth floor demanded by the issue: stress runs must deepen beyond the
#: regimes tier-1 exercises.
DEPTH = 48


def existential_descent(roots: int) -> tuple[DatalogPMProgram, Database]:
    """An ontology-style unbounded existential descent with negation.

    ``e(X) -> ∃Y n(X, Y)``, ``n(X, Y) -> e(Y)`` drives every root to the
    depth bound (the Skolem nulls nest *linearly*, so label comparisons stay
    cheap even at large depths); the ``live``/``stop`` pair keeps all three
    truth values alive, as in the paper's running examples.
    """
    x, y = Variable("X"), Variable("Y")
    program = DatalogPMProgram(
        [
            NTGD((Atom("e", (x,)),), Atom("n", (x, y)), label="spawn"),
            NTGD((Atom("n", (x, y)),), Atom("e", (y,)), label="descend"),
            NTGD((Atom("n", (x, y)),), Atom("live", (x,)), (Atom("stop", (y,)),), label="live"),
            NTGD((Atom("e", (x,)),), Atom("stop", (x,)), (Atom("live", (x,)),), label="stopper"),
        ]
    )
    database = Database([Atom("e", (Constant(f"c{i}"),)) for i in range(roots)])
    return program, database


def model_fingerprint(model):
    return (
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        model.converged,
    )


@pytest.mark.parametrize("saturation", ["agenda", "scan"])
@pytest.mark.parametrize("segment_cache", [False, True])
def test_deep_chain_budget_exhaustion_is_resumable(saturation, segment_cache):
    """Chain workload at depth ≥ 32, budget blown mid-saturation, resumed."""
    program, database = chain_reachability_workload(8, DEPTH)
    clear_segment_stores()
    sizing = WellFoundedEngine(
        program, database, initial_depth=DEPTH, max_depth=DEPTH, segment_cache=False
    )
    reference = sizing.model()
    saturated_nodes = len(reference.forest())

    clear_segment_stores()
    engine = WellFoundedEngine(
        program,
        database,
        initial_depth=DEPTH,
        max_depth=DEPTH,
        max_nodes=saturated_nodes // 2,  # exhausts in the middle of saturation
        saturation=saturation,
        segment_cache=segment_cache,
    )
    with pytest.raises(GroundingError):
        engine.model()
    # the ROADMAP retry bug: this used to return converged=True
    with pytest.raises(GroundingError):
        engine.model()
    engine.max_nodes = saturated_nodes + 10
    resumed = engine.model()
    assert model_fingerprint(resumed) == model_fingerprint(reference)
    assert len(resumed.forest()) == saturated_nodes


@pytest.mark.parametrize("saturation", ["agenda", "scan"])
def test_deep_existential_descent_budget_exhaustion_is_resumable(saturation):
    """Ontology-style existential descent at depth ≥ 32 with mid-chase failure."""
    program, database = existential_descent(12)
    clear_segment_stores()
    reference_engine = GuardedChaseEngine(skolemize_program(program), database)
    reference_engine.expand(DEPTH)
    reference = reference_engine.forest

    engine = GuardedChaseEngine(
        skolemize_program(program),
        database,
        max_nodes=len(reference) // 2,
        saturation=saturation,
    )
    with pytest.raises(GroundingError):
        engine.expand(DEPTH)
    with pytest.raises(GroundingError):
        engine.expand(DEPTH)  # retry with the same budget re-raises
    partial = len(engine.forest)
    assert 0 < partial <= len(reference) // 2
    engine.max_nodes = len(reference) + 10
    engine.expand(DEPTH)
    assert len(engine.forest) == len(reference)
    assert engine.forest.labels() == reference.labels()
    assert frozenset(engine.forest.edge_rules()) == frozenset(reference.edge_rules())
    levels = {a: reference.level_of_atom(a) for a in reference.labels()}
    assert {a: engine.forest.level_of_atom(a) for a in engine.forest.labels()} == levels


@pytest.mark.parametrize("segment_cache", [False, True])
def test_ontology_workloads_deepen_beyond_32(segment_cache):
    """The DL-translated generators agree across saturation modes at depth ≥ 32."""
    for program, database in (
        employment_workload(128, seed=7),
        translate_ontology(university_ontology(8, 24, seed=7)),
    ):
        clear_segment_stores()
        agenda = WellFoundedEngine(
            program,
            database,
            initial_depth=33,
            max_depth=37,
            segment_cache=segment_cache,
        ).model()
        scan = WellFoundedEngine(
            program, database, initial_depth=33, max_depth=37,
            saturation="scan", segment_cache=False,
        ).model()
        assert model_fingerprint(agenda) == model_fingerprint(scan)


def test_repeated_budget_cycling_converges():
    """Exhaust → raise → exhaust deeper → raise: saturation always lands on
    the unique fixpoint no matter how often it is interrupted."""
    program, database = existential_descent(4)
    clear_segment_stores()
    reference_engine = GuardedChaseEngine(skolemize_program(program), database)
    reference_engine.expand(DEPTH)
    reference = reference_engine.forest

    engine = GuardedChaseEngine(
        skolemize_program(program), database, max_nodes=20
    )
    for budget in (40, 80, 160, len(reference) + 10):
        try:
            engine.expand(DEPTH)
        except GroundingError:
            pass
        else:
            break
        engine.max_nodes = budget
    engine.expand(DEPTH)
    assert engine.forest.labels() == reference.labels()
    assert len(engine.forest) == len(reference)
