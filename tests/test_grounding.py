"""Unit tests for :mod:`repro.lp.grounding`."""

from __future__ import annotations

import pytest

from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_normal_program, parse_normal_rule
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant, Variable
from repro.lp.grounding import (
    GroundProgram,
    ground_over_atoms,
    ground_rule_instances,
    relevant_grounding,
)

X, Y = Variable("X"), Variable("Y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestGroundProgram:
    def test_only_ground_rules_are_accepted(self):
        program = GroundProgram()
        with pytest.raises(GroundingError):
            program.add(NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), ()))

    def test_indexes(self):
        rule = NormalRule(Atom("p", (a,)), (Atom("q", (a,)),), (Atom("r", (a,)),))
        program = GroundProgram([rule, NormalRule(Atom("q", (a,)))])
        assert rule in program
        assert program.rules_with_head(Atom("p", (a,))) == [rule]
        assert program.head_atoms() == {Atom("p", (a,)), Atom("q", (a,))}
        assert Atom("r", (a,)) in program.atoms()
        assert program.facts() == [Atom("q", (a,))]

    def test_duplicates_ignored(self):
        rule = NormalRule(Atom("p", (a,)))
        program = GroundProgram([rule, rule])
        assert len(program) == 1

    def test_positive_part(self):
        rule = NormalRule(Atom("p", (a,)), (Atom("q", (a,)),), (Atom("r", (a,)),))
        program = GroundProgram([rule])
        assert not program.is_positive()
        assert program.positive_part().is_positive()


class TestGroundRuleInstances:
    def test_instances_over_candidate_atoms(self):
        rule = parse_normal_rule("edge(X, Y), not blocked(X) -> path(X, Y).")
        index = {"edge": [Atom("edge", (a, b)), Atom("edge", (b, c))]}
        instances = list(ground_rule_instances(rule, index))
        heads = {r.head for r in instances}
        assert heads == {Atom("path", (a, b)), Atom("path", (b, c))}
        # negative bodies are instantiated alongside
        assert all(r.body_neg[0].args[0] == r.body_pos[0].args[0] for r in instances)

    def test_ground_facts_pass_through(self):
        fact = parse_normal_rule("p(a).")
        assert list(ground_rule_instances(fact, {})) == [fact]

    def test_no_candidates_means_no_instances(self):
        rule = parse_normal_rule("edge(X, Y) -> path(X, Y).")
        assert list(ground_rule_instances(rule, {})) == []


class TestGroundOverAtoms:
    def test_rules_ground_only_over_given_atoms(self):
        program = parse_normal_program("edge(X, Y) -> path(X, Y).")
        ground = ground_over_atoms(program, [Atom("edge", (a, b))])
        assert len(ground) == 1
        assert ground.rules()[0].head == Atom("path", (a, b))


class TestRelevantGrounding:
    def test_transitive_closure_grounding(self):
        program = parse_normal_program(
            """
            edge(a, b). edge(b, c).
            edge(X, Y) -> path(X, Y).
            path(X, Y), edge(Y, Z) -> path(X, Z).
            """
        )
        ground = relevant_grounding(program)
        heads = {r.head for r in ground}
        assert Atom("path", (a, c)) in heads
        # irrelevant instances (e.g. path(c, a)) are never produced
        assert Atom("path", (c, a)) not in ground.atoms()

    def test_negative_bodies_do_not_block_grounding(self):
        # Relevant grounding treats negation as satisfiable; the instance must exist.
        program = parse_normal_program(
            """
            node(a). node(b). edge(a, b).
            node(X), not source(X) -> sink(X).
            """
        )
        ground = relevant_grounding(program)
        assert Atom("sink", (a,)) in ground.head_atoms()

    def test_extra_atoms_seed_the_candidates(self):
        program = parse_normal_program("edge(X, Y) -> path(X, Y).")
        ground = relevant_grounding(program, extra_atoms=[Atom("edge", (a, b))])
        assert Atom("path", (a, b)) in ground.head_atoms()
        # but extra atoms are not turned into facts
        assert Atom("edge", (a, b)) not in {r.head for r in ground if r.is_fact()}

    def test_round_budget_guards_function_symbols(self):
        program = parse_normal_program(
            """
            p(a).
            p(X) -> p(f(X)).
            """
        )
        with pytest.raises(GroundingError):
            relevant_grounding(program, max_rounds=5)

    def test_atom_budget(self):
        program = parse_normal_program(
            """
            p(a).
            p(X) -> p(f(X)).
            """
        )
        with pytest.raises(GroundingError):
            relevant_grounding(program, max_atoms=10)


class TestIncrementalFactUpdates:
    """The grounder-level insert/retract seam the view layer builds on."""

    def _grounder(self):
        from repro.lp.grounding import SemiNaiveGrounder

        program = parse_normal_program("edge(X, Y) -> path(X, Y).")
        grounder = SemiNaiveGrounder(program)
        grounder.run()
        return grounder

    def test_add_fact_grounds_only_the_delta(self):
        grounder = self._grounder()
        grounder.add_fact(Atom("edge", (a, b)))
        assert grounder.run()
        delta = list(grounder.delta_rules())
        assert Atom("path", (a, b)) in {r.head for r in delta}
        # the fact itself became a stored fact rule
        assert NormalRule(Atom("edge", (a, b))) in set(grounder.ground)

    def test_add_fact_rejects_non_ground_atoms(self):
        grounder = self._grounder()
        with pytest.raises(GroundingError):
            grounder.add_fact(Atom("edge", (X, b)))

    def test_retract_fact_removes_the_candidate(self):
        grounder = self._grounder()
        grounder.add_fact(Atom("edge", (a, b)))
        grounder.run()
        assert grounder.retract_fact(Atom("edge", (a, b))) is True
        assert Atom("edge", (a, b)) not in grounder.index
        # stored rules are append-only: the produced instance stays
        assert Atom("path", (a, b)) in {r.head for r in grounder.ground}
        assert grounder.retract_fact(Atom("edge", (a, b))) is False

    def test_retract_pending_delta_atom_cancels_its_joins(self):
        grounder = self._grounder()
        grounder.add_fact(Atom("edge", (a, b)))
        # retract before running: the staged delta atom must not fire
        assert grounder.retract_fact(Atom("edge", (a, b))) is True
        assert grounder.run()
        assert Atom("path", (a, b)) not in {r.head for r in grounder.ground}

    def test_reseed_restores_matching_state(self):
        grounder = self._grounder()
        grounder.add_fact(Atom("edge", (a, b)))
        grounder.run()
        grounder.retract_fact(Atom("edge", (a, b)))
        grounder.reseed(Atom("edge", (a, b)))
        assert grounder.run()
        assert Atom("edge", (a, b)) in grounder.index

    @pytest.mark.parametrize("backend", ["columnar", "sqlite"])
    def test_columnar_backends_mirror_the_tuple_seam(self, backend):
        from repro.lp.columnar import make_grounder

        program = parse_normal_program("edge(X, Y) -> path(X, Y).")
        grounder = make_grounder(program, backend=backend)
        grounder.run()
        grounder.add_fact(Atom("edge", (a, b)))
        grounder.add_fact(Atom("edge", (b, c)))
        assert grounder.run()
        assert Atom("path", (b, c)) in grounder.ground.atoms()
        assert grounder.retract_fact(Atom("edge", (b, c))) is True
        assert Atom("edge", (b, c)) not in grounder.index
        assert grounder.retract_fact(Atom("edge", (b, c))) is False
        # a retracted row no longer joins: new facts over it stay unmatched
        grounder.reseed(Atom("edge", (b, c)))
        assert grounder.run()
        assert Atom("edge", (b, c)) in grounder.index
