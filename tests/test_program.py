"""Unit tests for :mod:`repro.lang.program` (databases, schemas, programs)."""

from __future__ import annotations

import pytest

from repro.exceptions import IllFormedRuleError, NotGuardedError
from repro.lang.atoms import Atom
from repro.lang.program import Database, DatalogPMProgram, NormalProgram, Schema
from repro.lang.rules import NTGD, NormalRule
from repro.lang.terms import Constant, FunctionTerm, Variable

X, Y = Variable("X"), Variable("Y")
a, b = Constant("a"), Constant("b")


class TestDatabase:
    def test_add_and_membership(self):
        database = Database([Atom("p", (a,))])
        assert Atom("p", (a,)) in database
        assert Atom("p", (b,)) not in database
        assert len(database) == 1

    def test_duplicates_are_ignored(self):
        database = Database([Atom("p", (a,)), Atom("p", (a,))])
        assert len(database) == 1

    def test_non_ground_atoms_are_rejected(self):
        with pytest.raises(IllFormedRuleError):
            Database([Atom("p", (X,))])

    def test_nulls_rejected_by_default_but_allowed_on_request(self):
        null_atom = Atom("p", (FunctionTerm("n", ()),))
        with pytest.raises(IllFormedRuleError):
            Database([null_atom])
        assert null_atom in Database([null_atom], allow_nulls=True)

    def test_predicate_index_and_constants(self):
        database = Database([Atom("p", (a,)), Atom("q", (a, b))])
        assert database.with_predicate("p") == {Atom("p", (a,))}
        assert database.predicates() == {"p", "q"}
        assert database.constants() == {a, b}

    def test_copy_is_independent(self):
        database = Database([Atom("p", (a,))])
        clone = database.copy()
        clone.add(Atom("p", (b,)))
        assert len(database) == 1 and len(clone) == 2

    def test_equality_with_sets(self):
        database = Database([Atom("p", (a,))])
        assert database == {Atom("p", (a,))}

    def test_remove_and_discard(self):
        database = Database([Atom("p", (a,)), Atom("q", (a, b))])
        database.remove(Atom("p", (a,)))
        assert Atom("p", (a,)) not in database
        assert database.with_predicate("p") == set()
        with pytest.raises(KeyError):
            database.remove(Atom("p", (a,)))
        assert database.discard(Atom("p", (a,))) is False
        assert database.discard(Atom("q", (a, b))) is True
        assert len(database) == 0

    def test_version_distinguishes_add_remove_round_trips(self):
        """`len` returns to its old value after add+remove; `version` must not."""
        database = Database([Atom("p", (a,))])
        version = database.version
        database.add(Atom("p", (b,)))
        database.remove(Atom("p", (b,)))
        assert len(database) == 1
        assert database.version > version
        # ineffective operations do not bump the counter
        version = database.version
        database.add(Atom("p", (a,)))
        database.discard(Atom("p", (b,)))
        assert database.version == version


class TestSchema:
    def test_from_atoms_infers_arities(self):
        schema = Schema.from_atoms([Atom("p", (a,)), Atom("q", (a, b))])
        assert schema.arity("p") == 1 and schema.arity("q") == 2
        assert schema.max_arity() == 2
        assert schema.predicates() == {"p", "q"}

    def test_inconsistent_arities_are_rejected(self):
        with pytest.raises(IllFormedRuleError):
            Schema.from_atoms([Atom("p", (a,)), Atom("p", (a, b))])

    def test_from_program_and_database(self):
        program = DatalogPMProgram([NTGD((Atom("r", (X, Y)),), Atom("s", (X,)))])
        database = Database([Atom("t", (a, b))])
        schema = Schema.from_program_and_database(program, database)
        assert schema.predicates() == {"r", "s", "t"}


class TestNormalProgram:
    def test_insertion_order_and_deduplication(self):
        rule = NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), ())
        program = NormalProgram([rule, rule])
        assert len(program) == 1 and program.rules() == (rule,)

    def test_facts_and_proper_rules(self):
        fact = NormalRule(Atom("q", (a,)))
        rule = NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), ())
        program = NormalProgram([fact, rule])
        assert program.facts() == [fact]
        assert program.proper_rules() == [rule]

    def test_positive_part(self):
        rule = NormalRule(Atom("p", (X,)), (Atom("q", (X,)),), (Atom("r", (X,)),))
        program = NormalProgram([rule])
        assert not program.is_positive()
        assert program.positive_part().is_positive()

    def test_signature_helpers(self):
        head = Atom("p", (FunctionTerm("f", (X,)),))
        program = NormalProgram(
            [NormalRule(head, (Atom("q", (X, a)),), ()), NormalRule(Atom("q", (a, b)))]
        )
        assert program.predicates() == {"p", "q"}
        assert program.constants() == {a, b}
        assert program.function_symbols() == {("f", 1)}
        assert program.schema().arity("q") == 2


class TestDatalogPMProgram:
    def test_guardedness_checks(self):
        guarded = DatalogPMProgram([NTGD((Atom("r", (X, Y)),), Atom("s", (X,)))])
        assert guarded.is_guarded()
        guarded.require_guarded()

        unguarded = DatalogPMProgram(
            [NTGD((Atom("p", (X,)), Atom("q", (Y,))), Atom("r", (X, Y)))]
        )
        assert not unguarded.is_guarded()
        with pytest.raises(NotGuardedError):
            unguarded.require_guarded()

    def test_positive_part_and_max_arity(self):
        program = DatalogPMProgram(
            [NTGD((Atom("r", (X, Y)),), Atom("s", (X,)), (Atom("t", (X,)),))]
        )
        assert not program.is_positive()
        assert program.positive_part().is_positive()
        assert program.max_arity() == 2

    def test_schema_includes_database(self):
        program = DatalogPMProgram([NTGD((Atom("r", (X, Y)),), Atom("s", (X,)))])
        schema = program.schema(Database([Atom("u", (a,))]))
        assert "u" in schema
