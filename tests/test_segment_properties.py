"""Property tests: the chase-segment cache never changes anything observable.

The contract of :mod:`repro.chase.segments` is that caching affects *speed
only*: across random guarded workloads, an engine with the cache on — cold or
warm, with any deepening schedule, classic or through the magic-sets rewrite
path (including its relevance-pruned fallback sub-engines, which carry their
own per-fingerprint stores) — produces the same chase segment (labels, depths,
canonical levels, ground rules) and the same three-valued model and query
answers as an engine with the cache off.

Labels, levels and rules are compared *exactly* rather than up to null
renaming: with a fixed database the Skolemised nulls are deterministic, so
"equal up to renaming" and "equal" coincide — and exact equality is the
stronger check.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.generators import random_guarded_program
from repro.chase.segments import clear_segment_stores
from repro.core.engine import WellFoundedEngine
from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.queries import NormalBCQ
from repro.lang.terms import Constant, Variable

X = Variable("X")

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def guarded_workloads(draw):
    """A random guarded Datalog± workload plus a query against it."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_predicates = draw(st.integers(min_value=1, max_value=3))
    num_rules = draw(st.integers(min_value=2, max_value=5))
    negation_prob = draw(st.sampled_from([0.0, 0.4, 0.8]))
    existential_prob = draw(st.sampled_from([0.0, 0.4, 0.8]))
    program, database = random_guarded_program(
        num_predicates,
        2,
        num_rules,
        negation_prob=negation_prob,
        existential_prob=existential_prob,
        num_constants=3,
        num_facts=8,
        seed=seed,
    )
    predicate = draw(st.sampled_from(sorted({f"q{i}" for i in range(num_predicates)})))
    constant = Constant(f"c{draw(st.integers(min_value=0, max_value=2))}")
    query = draw(
        st.sampled_from(
            [
                NormalBCQ((Atom(predicate, (constant,)),)),
                NormalBCQ((Atom(predicate, (X,)),)),
                NormalBCQ((Atom(predicate, (X,)),), (Atom(predicate, (constant,)),)),
            ]
        )
    )
    return program, database, query


def chase_signature(engine: WellFoundedEngine):
    """The full observable state of an engine's chase segment and model.

    A chase that exceeds the node budget is itself an observable outcome (the
    saturated segment is too large in *any* construction order), represented
    by a sentinel so cached and uncached runs must agree on it too.
    """
    try:
        model = engine.model()
    except GroundingError:
        return "node-budget-exceeded"
    forest = model.forest()
    labels = forest.labels()
    return (
        labels,
        frozenset(forest.edge_rules()),
        {atom: forest.depth_of_atom(atom) for atom in labels},
        {atom: forest.level_of_atom(atom) for atom in labels},
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        (model.depth, model.converged, model.iterations),
    )


@given(workload=guarded_workloads())
@settings(max_examples=40, **COMMON_SETTINGS)
def test_cached_chase_equals_uncached_chase(workload):
    """Cold and warm cached engines reproduce the uncached chase exactly."""
    program, database, _ = workload
    clear_segment_stores()
    options = dict(max_depth=13, max_nodes=2_000)
    uncached = WellFoundedEngine(program, database, segment_cache=False, **options)
    expected = chase_signature(uncached)
    cold = WellFoundedEngine(program, database, segment_cache=True, **options)
    assert chase_signature(cold) == expected
    warm = WellFoundedEngine(program, database, segment_cache=True, **options)
    assert chase_signature(warm) == expected


def _holds(engine: WellFoundedEngine, query, *, rewrite: bool):
    """``holds`` with the node-budget outcome reified (see chase_signature)."""
    try:
        return engine.holds(query, rewrite=rewrite)
    except GroundingError:
        return "node-budget-exceeded"


@given(workload=guarded_workloads())
@settings(max_examples=30, **COMMON_SETTINGS)
def test_cached_answers_equal_uncached_answers_under_rewrite(workload):
    """The cache composes with the magic-sets path and its chase fallback."""
    program, database, query = workload
    clear_segment_stores()
    options = dict(max_depth=13, max_nodes=2_000)
    uncached = WellFoundedEngine(program, database, segment_cache=False, **options)
    cached = WellFoundedEngine(program, database, segment_cache=True, **options)
    for rewrite in (False, True):
        assert _holds(cached, query, rewrite=rewrite) == _holds(
            uncached, query, rewrite=rewrite
        ), (query, rewrite, cached.last_query_stats)
    # A second cached engine answers from a warm store.  Its twin must see the
    # *same call sequence* (rewrite=True only): an engine whose earlier call
    # already raised the node budget retries model() on its partial forest —
    # pre-existing engine semantics that depend on call history, not caching.
    warm = WellFoundedEngine(program, database, segment_cache=True, **options)
    fresh_uncached = WellFoundedEngine(program, database, segment_cache=False, **options)
    assert _holds(warm, query, rewrite=True) == _holds(
        fresh_uncached, query, rewrite=True
    )


@given(
    workload=guarded_workloads(),
    initial_depth=st.integers(min_value=1, max_value=4),
    depth_step=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, **COMMON_SETTINGS)
def test_cache_is_schedule_independent(workload, initial_depth, depth_step):
    """Any deepening schedule agrees with its uncached twin, node for node."""
    program, database, _ = workload
    clear_segment_stores()
    options = dict(
        initial_depth=initial_depth,
        depth_step=depth_step,
        max_depth=initial_depth + 3 * depth_step,
        max_nodes=2_000,
    )
    uncached = WellFoundedEngine(program, database, segment_cache=False, **options)
    cached = WellFoundedEngine(program, database, segment_cache=True, **options)
    assert chase_signature(cached) == chase_signature(uncached)


@given(
    workload=guarded_workloads(),
    initial_depth=st.integers(min_value=1, max_value=4),
    depth_step=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, **COMMON_SETTINGS)
def test_cached_segment_keys_equal_recomputed_keys(
    workload, initial_depth, depth_step
):
    """The per-label segment-key cache is invisible (PR 5 satellite).

    ``_segment_key`` caches per label and is invalidated through the
    side-label machinery whenever a new side-relevant label lands on a
    label's terms; after any deepening schedule every cached key must equal
    a from-scratch recomputation (``_segment_key_uncached``) against the
    final forest.
    """
    program, database, _ = workload
    clear_segment_stores()
    engine = WellFoundedEngine(
        program,
        database,
        initial_depth=initial_depth,
        depth_step=depth_step,
        max_depth=initial_depth + 3 * depth_step,
        max_nodes=2_000,
    )
    try:
        engine.model()
    except GroundingError:
        pass  # a partially expanded forest must satisfy the invariant too
    chase = engine._chase
    if chase.segment_store is None:
        return  # cache declined (unguarded rules); nothing cached
    for label in chase.forest.labels():
        assert chase._segment_key(label) == chase._segment_key_uncached(label), label
