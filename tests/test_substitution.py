"""Unit tests for :mod:`repro.lang.substitution` (matching, unification, homomorphisms)."""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom
from repro.lang.substitution import Substitution, match, match_atoms, unify
from repro.lang.terms import Constant, FunctionTerm, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestSubstitutionBasics:
    def test_empty_substitution_is_identity(self):
        subst = Substitution.empty()
        term = FunctionTerm("f", (a, X))
        assert subst.apply_term(term) == term

    def test_bind_and_apply(self):
        subst = Substitution.empty().bind(X, a)
        assert subst.apply_term(X) == a
        assert subst.apply_term(Y) == Y
        assert subst.apply_atom(Atom("p", (X, Y))) == Atom("p", (a, Y))

    def test_rebinding_to_same_value_is_allowed(self):
        subst = Substitution.empty().bind(X, a)
        assert subst.bind(X, a)[X] == a

    def test_rebinding_to_different_value_raises(self):
        subst = Substitution.empty().bind(X, a)
        with pytest.raises(ValueError):
            subst.bind(X, b)

    def test_apply_recurses_into_function_terms(self):
        subst = Substitution({X: a})
        term = FunctionTerm("f", (X, FunctionTerm("g", (X,))))
        assert subst.apply_term(term) == FunctionTerm("f", (a, FunctionTerm("g", (a,))))

    def test_apply_preserves_object_identity_when_unchanged(self):
        # Structure sharing matters for the deep Skolem terms the chase builds.
        ground = FunctionTerm("f", (a, FunctionTerm("g", (b,))))
        subst = Substitution({X: a})
        assert subst.apply_term(ground) is ground

    def test_compose(self):
        first = Substitution({X: Y})
        second = Substitution({Y: a})
        composed = first.compose(second)
        assert composed.apply_term(X) == a
        assert composed.apply_term(Y) == a

    def test_restrict(self):
        subst = Substitution({X: a, Y: b})
        restricted = subst.restrict([X])
        assert X in restricted and Y not in restricted

    def test_apply_literal_preserves_polarity(self):
        from repro.lang.atoms import neg

        subst = Substitution({X: a})
        literal = neg(Atom("p", (X,)))
        applied = subst.apply_literal(literal)
        assert not applied.positive and applied.atom == Atom("p", (a,))


class TestMatching:
    def test_match_binds_pattern_variables(self):
        pattern = Atom("p", (X, Y))
        target = Atom("p", (a, b))
        result = match(pattern, target)
        assert result is not None
        assert result[X] == a and result[Y] == b

    def test_match_respects_repeated_variables(self):
        pattern = Atom("p", (X, X))
        assert match(pattern, Atom("p", (a, a))) is not None
        assert match(pattern, Atom("p", (a, b))) is None

    def test_match_fails_on_predicate_or_arity_mismatch(self):
        assert match(Atom("p", (X,)), Atom("q", (a,))) is None
        assert match(Atom("p", (X,)), Atom("p", (a, b))) is None

    def test_match_constants_must_agree(self):
        assert match(Atom("p", (a, X)), Atom("p", (a, b))) is not None
        assert match(Atom("p", (a, X)), Atom("p", (b, b))) is None

    def test_match_function_terms_structurally(self):
        pattern = Atom("p", (FunctionTerm("f", (X,)),))
        target = Atom("p", (FunctionTerm("f", (a,)),))
        result = match(pattern, target)
        assert result is not None and result[X] == a
        assert match(pattern, Atom("p", (FunctionTerm("g", (a,)),))) is None

    def test_match_extends_existing_substitution(self):
        initial = Substitution({X: a})
        assert match(Atom("p", (X,)), Atom("p", (a,)), initial) is not None
        assert match(Atom("p", (X,)), Atom("p", (b,)), initial) is None

    def test_match_atoms_enumerates_all_joins(self):
        patterns = [Atom("edge", (X, Y)), Atom("edge", (Y, Z))]
        facts = [
            Atom("edge", (a, b)),
            Atom("edge", (b, c)),
            Atom("edge", (a, c)),
        ]
        results = list(match_atoms(patterns, facts))
        bound = {(s[X], s[Y], s[Z]) for s in results}
        assert bound == {(a, b, c)}

    def test_match_atoms_with_no_candidates_is_empty(self):
        assert list(match_atoms([Atom("p", (X,))], [Atom("q", (a,))])) == []


class TestUnification:
    def test_unify_variable_with_constant(self):
        result = unify(Atom("p", (X,)), Atom("p", (a,)))
        assert result is not None and result[X] == a

    def test_unify_two_variables(self):
        result = unify(Atom("p", (X,)), Atom("p", (Y,)))
        assert result is not None
        assert result.apply_term(X) == result.apply_term(Y)

    def test_unify_function_terms(self):
        left = Atom("p", (FunctionTerm("f", (X, b)),))
        right = Atom("p", (FunctionTerm("f", (a, Y)),))
        result = unify(left, right)
        assert result is not None
        assert result.apply_atom(left) == result.apply_atom(right)

    def test_unify_fails_on_clash(self):
        assert unify(Atom("p", (a,)), Atom("p", (b,))) is None
        assert unify(Atom("p", (X,)), Atom("q", (X,))) is None

    def test_occurs_check_prevents_infinite_terms(self):
        left = Atom("p", (X,))
        right = Atom("p", (FunctionTerm("f", (X,)),))
        assert unify(left, right) is None
