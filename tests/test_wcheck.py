"""Tests for the WCHECK-style path membership checks (:mod:`repro.core.wcheck`)."""

from __future__ import annotations

import pytest

from repro.lang.atoms import Literal
from repro.lang.parser import parse_atom
from repro.core.wcheck import path_witness, wcheck_atom, wcheck_literal


class TestPositiveMembership:
    def test_true_atoms_have_witnessing_paths(self, paper_example_engine):
        model = paper_example_engine.model()
        for atom_text in ("p(0,0)", "p(0,1)", "t(0)"):
            assert wcheck_atom(model, parse_atom(atom_text)), atom_text

    def test_false_atoms_have_no_witnessing_path(self, paper_example_engine):
        model = paper_example_engine.model()
        for atom_text in ("q(1)", "s(0)"):
            assert not wcheck_atom(model, parse_atom(atom_text)), atom_text

    def test_atom_absent_from_the_forest_is_not_derivable(self, paper_example_engine):
        assert not wcheck_atom(paper_example_engine.model(), parse_atom("q(0)"))

    def test_accepts_engine_or_model(self, paper_example_engine):
        atom = parse_atom("t(0)")
        assert wcheck_atom(paper_example_engine, atom) == wcheck_atom(
            paper_example_engine.model(), atom
        )


class TestNegativeMembership:
    def test_false_atoms_are_confirmed_negative(self, paper_example_engine):
        model = paper_example_engine.model()
        assert wcheck_literal(model, Literal(parse_atom("s(0)"), False))
        assert wcheck_literal(model, Literal(parse_atom("q(1)"), False))

    def test_true_atoms_are_not_confirmed_negative(self, paper_example_engine):
        model = paper_example_engine.model()
        assert not wcheck_literal(model, Literal(parse_atom("t(0)"), False))

    def test_atoms_without_nodes_are_vacuously_false(self, paper_example_engine):
        model = paper_example_engine.model()
        assert wcheck_literal(model, Literal(parse_atom("q(0)"), False))

    def test_positive_literals_delegate_to_wcheck_atom(self, paper_example_engine):
        model = paper_example_engine.model()
        assert wcheck_literal(model, Literal(parse_atom("t(0)"), True))


class TestAgreementWithTheFixpoint:
    def test_wcheck_agrees_with_the_model_on_every_segment_atom(self, paper_example_engine):
        # The path criterion of Sec. 4 is sufficient and necessary; on the
        # materialised segment it must therefore agree with the engine's
        # fixpoint on every atom.
        model = paper_example_engine.model()
        for atom in model.segment_atoms():
            assert wcheck_atom(model, atom) == model.is_true(atom), atom

    def test_recursive_mode_agrees_on_the_papers_key_literals(self, paper_example_engine):
        model = paper_example_engine.model()
        for atom_text, expected in [
            ("p(0,0)", True),
            ("p(0,1)", True),
            ("t(0)", True),
            ("q(1)", False),
        ]:
            assert wcheck_atom(model, parse_atom(atom_text), recursive=True) == expected


class TestWitnesses:
    def test_witness_path_starts_at_a_database_fact(self, paper_example_engine):
        model = paper_example_engine.model()
        path = path_witness(model, parse_atom("t(0)"))
        assert path is not None
        assert path[0] in (parse_atom("r(0,0,1)"), parse_atom("p(0,0)"))
        assert path[-1] == parse_atom("t(0)")

    def test_no_witness_for_false_atoms(self, paper_example_engine):
        assert path_witness(paper_example_engine.model(), parse_atom("s(0)")) is None
