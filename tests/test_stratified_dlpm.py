"""Tests for the stratified Datalog± baseline (:mod:`repro.core.stratified`)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotStratifiedError
from repro.lang.parser import parse_atom, parse_program
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Variable
from repro.core.engine import WellFoundedEngine
from repro.core.stratified import StratifiedDatalogPM

LITERATURE = """
conferencePaper(X) -> article(X).
scientist(X) -> exists Y isAuthorOf(X, Y).
isAuthorOf(X, Y), not retracted(Y) -> hasValidPublication(X).
scientist(john).
conferencePaper(pods13).
"""


class TestStratifiedSemantics:
    def test_positive_program_chase(self):
        baseline = StratifiedDatalogPM(LITERATURE)
        assert baseline.holds("? article(pods13)")
        assert baseline.holds("? isAuthorOf(john, Y)")
        assert baseline.holds("? hasValidPublication(john)")

    def test_closed_world_reading(self):
        baseline = StratifiedDatalogPM(LITERATURE)
        model = baseline.model()
        assert model.is_false(parse_atom("article(john)"))
        assert not model.is_undefined(parse_atom("article(john)"))

    def test_stratified_negation_is_evaluated_per_stratum(self):
        baseline = StratifiedDatalogPM(
            """
            employee(X), not manager(X) -> exists Y reportsTo(X, Y).
            employee(ann). employee(bob). manager(bob).
            """
        )
        assert baseline.holds("? reportsTo(ann, Y)")
        assert not baseline.holds("? reportsTo(bob, Y)")

    def test_unstratified_program_is_rejected(self):
        with pytest.raises(NotStratifiedError):
            StratifiedDatalogPM(
                """
                person(X), not registered(X) -> exists Y appliesFor(X, Y).
                appliesFor(X, Y) -> registered(X).
                registered(X), not person(X) -> person(X).
                person(a).
                """
            )

    def test_term_depth_bound_limits_the_chase(self):
        shallow = StratifiedDatalogPM(
            "next(X, Y) -> exists Z next(Y, Z).\nnext(a, b).", max_term_depth=2
        )
        deep = StratifiedDatalogPM(
            "next(X, Y) -> exists Z next(Y, Z).\nnext(a, b).", max_term_depth=5
        )
        assert len(deep.model()) > len(shallow.model())

    def test_answer_api(self):
        baseline = StratifiedDatalogPM(LITERATURE)
        query = ConjunctiveQuery(
            (parse_atom("article(X)").__class__("article", (Variable("X"),)),),
            (Variable("X"),),
        )
        assert (Constant("pods13"),) in baseline.answer(query)


class TestCoincidenceWithWfs:
    @pytest.mark.parametrize(
        "text,queries",
        [
            (
                LITERATURE,
                ["? article(pods13)", "? hasValidPublication(john)", "? retracted(X)"],
            ),
            (
                """
                bird(X), not penguin(X) -> exists Y flightOf(X, Y).
                flightOf(X, Y) -> flies(X).
                bird(tweety). bird(sam). penguin(sam).
                """,
                ["? flies(tweety)", "? flies(sam)", "? penguin(sam)"],
            ),
        ],
    )
    def test_wfs_coincides_with_stratified_semantics_on_stratified_programs(
        self, text, queries
    ):
        # The paper's design goal: the WFS generalises stratified Datalog±, so
        # on stratified programs both semantics must give the same answers.
        baseline = StratifiedDatalogPM(text)
        engine = WellFoundedEngine(text)
        for query in queries:
            assert baseline.holds(query) == engine.holds(query), query
