"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import pytest

from repro.cli import build_argument_parser, main

LITERATURE = """
conferencePaper(X) -> article(X).
scientist(X) -> exists Y isAuthorOf(X, Y).
scientist(john).
conferencePaper(pods13).
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "literature.dlp"
    path.write_text(LITERATURE)
    return str(path)


class TestArgumentParser:
    def test_defaults(self):
        args = build_argument_parser().parse_args(["prog.dlp"])
        assert args.program == "prog.dlp"
        assert args.query == [] and args.atom == []
        assert not args.dump_model and not args.stratified

    def test_repeatable_options(self):
        args = build_argument_parser().parse_args(
            ["prog.dlp", "--query", "? p(X)", "--query", "? q(X)", "--atom", "p(a)"]
        )
        assert len(args.query) == 2 and len(args.atom) == 1


class TestMain:
    def test_query_answering(self, program_file, capsys):
        code = main([program_file, "--query", "? isAuthorOf(john, Y)", "--query", "? article(john)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "? isAuthorOf(john, Y) : yes" in out
        assert "? article(john) : no" in out

    def test_atom_truth_values(self, program_file, capsys):
        code = main([program_file, "--atom", "article(pods13)", "--atom", "article(john)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "article(pods13) : true" in out
        assert "article(john) : false" in out

    def test_dump_model_and_stats(self, program_file, capsys):
        code = main([program_file, "--dump-model", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("# model:")
        assert "true   article(pods13)" in out

    def test_extra_database_file(self, program_file, tmp_path, capsys):
        database = tmp_path / "extra.facts"
        database.write_text("scientist(ada).")
        code = main([program_file, "--database", str(database), "--query", "? isAuthorOf(ada, Y)"])
        out = capsys.readouterr().out
        assert code == 0 and ": yes" in out

    def test_stratified_comparison_column(self, program_file, capsys):
        code = main([program_file, "--stratified", "--query", "? article(pods13)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[stratified: yes]" in out

    def test_parse_error_in_program_gives_exit_code_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.dlp"
        bad.write_text("p(X ->")
        code = main([str(bad), "--query", "? p(a)"])
        err = capsys.readouterr().err
        assert code == 2 and "error" in err

    def test_bad_query_reports_error_but_keeps_going(self, program_file, capsys):
        code = main([program_file, "--query", "??", "--query", "? article(pods13)"])
        captured = capsys.readouterr()
        assert code == 2
        assert "? article(pods13) : yes" in captured.out
        assert "error in query" in captured.err

    def test_missing_file_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["/nonexistent/program.dlp"])

    def test_rewrite_flag_answers_identically(self, program_file, capsys):
        code = main([program_file, "--rewrite", "--query", "? isAuthorOf(john, Y)",
                     "--query", "? article(john)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "? isAuthorOf(john, Y) : yes" in out
        assert "? article(john) : no" in out

    def test_verbose_prints_grounding_statistics(self, program_file, capsys):
        code = main([program_file, "--rewrite", "--verbose", "--query", "? article(pods13)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode=magic" in out
        assert "ground_rules=" in out

    def test_no_rewrite_is_the_classic_path(self, program_file, capsys):
        code = main([program_file, "--no-rewrite", "--verbose", "--query", "? article(pods13)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mode=classic" in out

    def test_bound_first_sips_option(self, program_file, capsys):
        code = main([program_file, "--rewrite", "--sips", "bound-first", "--verbose",
                     "--query", "? article(pods13)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sips=bound-first" in out


CHAINS = """
source(X) -> reach(X).
reach(X), edge(X, Y) -> reach(Y).
source(a).
edge(a, b).
edge(b, c).
"""


@pytest.fixture()
def chain_file(tmp_path):
    path = tmp_path / "chains.dlp"
    path.write_text(CHAINS)
    return str(path)


class TestUpdates:
    """The `--updates` script replay drives a warm `MaterializedEngine`."""

    def _script(self, tmp_path, text):
        path = tmp_path / "script.upd"
        path.write_text(text)
        return str(path)

    def test_insert_retract_and_inline_queries(self, chain_file, tmp_path, capsys):
        script = self._script(
            tmp_path,
            """
            ? reach(c)
            - edge(b, c).   % cut the chain
            ? reach(c)
            + edge(a, c).   # reconnect around b
            ? reach(X)
            """,
        )
        code = main([chain_file, "--updates", script, "--check"])
        out = capsys.readouterr().out
        assert code == 0
        lines = [line for line in out.splitlines() if line.startswith("?")]
        assert lines[0] == "? reach(c) : yes"
        assert lines[1] == "? reach(c) : no"
        assert lines[2] == "? reach(X) : (a) (b) (c)"

    def test_final_queries_see_the_updated_model(self, chain_file, tmp_path, capsys):
        script = self._script(tmp_path, "- edge(a, b).\n")
        code = main(
            [chain_file, "--updates", script, "--atom", "reach(b)", "--query", "? reach(a)"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reach(b) : false" in out
        assert "? reach(a) : yes" in out

    def test_malformed_update_line_reports_and_continues(self, chain_file, tmp_path, capsys):
        script = self._script(tmp_path, "! nonsense\n? reach(a)\n")
        code = main([chain_file, "--updates", script])
        captured = capsys.readouterr()
        assert code == 2
        assert "line 1" in captured.err
        assert "? reach(a) : yes" in captured.out

    def test_verbose_reports_view_statistics(self, chain_file, tmp_path, capsys):
        script = self._script(tmp_path, "- edge(b, c).\n+ edge(b, c).\n")
        code = main([chain_file, "--updates", script, "--verbose", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# view:" in out
        assert "overdeleted" in out
