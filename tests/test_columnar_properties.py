"""Property tests: the grounding backends are indistinguishable, always.

Random safe normal programs (with skolem-style function heads, negation and
mixed EDBs) must ground to *set-identical* programs with identical
well-founded models under every backend at saturation — including when
saturation is reached through a chunked, resumed ``max_rounds`` schedule —
and random guarded Datalog± workloads × deepening schedules × rewrite on/off
must make every engine ``backend=`` indistinguishable from the tuple oracle
on ``holds``/``answer``.  The tuple matcher is the retained reference,
exactly as ``saturation="scan"`` is for the agenda and ``incremental=False``
for the WFS maintenance.  Budget-*interrupted* prefixes are deliberately not
compared round-by-round: the tuple matcher's rounds observe mid-round
emissions while the columnar rounds are snapshot-consistent, so a budget may
cut the backends at different (individually sound, resumable) prefixes — see
:mod:`repro.lp.columnar`.
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.chase.segments import clear_segment_stores
from repro.core.engine import WellFoundedEngine
from repro.exceptions import GroundingError
from repro.lp.columnar import BACKENDS, make_grounder
from repro.lp.wfs import well_founded_model

from strategies import guarded_workloads, safe_normal_workloads

NEW_BACKENDS = [b for b in BACKENDS if b != "tuple"]

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Function heads can make the relevant grounding infinite; oracle runs are
#: bounded by this round budget and non-saturating draws are discarded.
MAX_ROUNDS = 8
#: Snapshot rounds can trail the oracle's live-index rounds by chained
#: derivations, so the resumed backends get headroom beyond MAX_ROUNDS.
MAX_ROUNDS_SLACK = 3 * MAX_ROUNDS


def _saturated_oracle(program, edb):
    oracle = make_grounder(program, edb, backend="tuple")
    assume(oracle.run(max_rounds=MAX_ROUNDS, raise_on_budget=False))
    return oracle


@given(workload=safe_normal_workloads())
@settings(max_examples=80, **COMMON_SETTINGS)
def test_backends_ground_identically(workload):
    """Same rules (modulo order), same candidate atoms, same model."""
    program, edb = workload
    oracle = _saturated_oracle(program, edb)
    model = well_founded_model(oracle.ground)
    for backend in NEW_BACKENDS:
        grounder = make_grounder(program, edb, backend=backend)
        assert grounder.run(max_rounds=MAX_ROUNDS_SLACK, raise_on_budget=False), backend
        assert set(grounder.ground) == set(oracle.ground), backend
        assert grounder.ground.atoms() == oracle.ground.atoms(), backend
        assert well_founded_model(grounder.ground) == model, backend


@given(
    workload=safe_normal_workloads(),
    chunk=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=50, **COMMON_SETTINGS)
def test_chunked_budget_resume_reaches_the_same_fixpoint(workload, chunk):
    """Saturation through interrupted/resumed budgets is state-independent.

    Every backend is driven to saturation in ``chunk``-round budget slices;
    the interrupted prefixes are each backend's own business, but the per-call
    deltas must partition its final rule list and the fixpoints of all
    backends must be set-identical to the uninterrupted oracle's.
    """
    program, edb = workload
    oracle = _saturated_oracle(program, edb)
    for backend in NEW_BACKENDS:
        grounder = make_grounder(program, edb, backend=backend)
        deltas = []
        budget = chunk
        while not grounder.run(max_rounds=budget, raise_on_budget=False):
            deltas.append(grounder.delta_rules())
            assert budget <= MAX_ROUNDS_SLACK, backend
            budget += chunk
        deltas.append(grounder.delta_rules())
        assert grounder.saturated, backend
        assert [r for d in deltas for r in d] == list(grounder.ground.rules()), backend
        assert set(grounder.ground) == set(oracle.ground), backend
        assert grounder.ground.atoms() == oracle.ground.atoms(), backend


def _answers(engine: WellFoundedEngine, queries, rewrite: bool):
    out = []
    for query in queries:
        try:
            out.append(engine.holds(query, rewrite=rewrite))
        except GroundingError:
            out.append("grounding-budget")
    try:
        out.append(engine.answer("? q0(X)", rewrite=rewrite))
    except GroundingError:
        out.append("grounding-budget")
    return out


@given(
    workload=guarded_workloads(),
    backend=st.sampled_from(NEW_BACKENDS),
    rewrite=st.booleans(),
    initial_depth=st.integers(min_value=1, max_value=3),
    depth_step=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=30, **COMMON_SETTINGS)
def test_engine_backends_answer_identically(
    workload, backend, rewrite, initial_depth, depth_step
):
    """holds/answer agree with the tuple oracle for any schedule × rewrite."""
    program, database = workload
    queries = ["? q0(X)", "? q0(c0)", "? g(c0, c1), not q0(c0)"]
    options = dict(
        initial_depth=initial_depth,
        depth_step=depth_step,
        max_depth=initial_depth + 2 * depth_step,
        max_nodes=1_500,
        strict=False,
    )
    clear_segment_stores()
    oracle = WellFoundedEngine(program, database, **options)
    expected = _answers(oracle, queries, rewrite)
    clear_segment_stores()
    engine = WellFoundedEngine(program, database, backend=backend, **options)
    assert _answers(engine, queries, rewrite) == expected
    stats = engine.last_query_stats
    assert stats is None or stats.get("backend") == backend
