"""Unit tests for :mod:`repro.lang.atoms`."""

from __future__ import annotations

from repro.lang.atoms import Atom, Literal, domain_of_atoms, neg, pos, variables_of_atoms
from repro.lang.terms import Constant, FunctionTerm, Variable


def atom(pred, *args):
    return Atom(pred, tuple(args))


class TestAtom:
    def test_equality_and_hashing(self):
        assert atom("p", Constant("a")) == atom("p", Constant("a"))
        assert atom("p", Constant("a")) != atom("p", Constant("b"))
        assert atom("p", Constant("a")) != atom("q", Constant("a"))
        assert len({atom("p", Constant("a")), atom("p", Constant("a"))}) == 1

    def test_arity_and_propositional_atoms(self):
        assert atom("p", Constant("a"), Constant("b")).arity == 2
        assert atom("flag").arity == 0
        assert str(atom("flag")) == "flag"

    def test_is_ground(self):
        assert atom("p", Constant("a")).is_ground()
        assert not atom("p", Variable("X")).is_ground()
        assert atom("p", FunctionTerm("f", (Constant("a"),))).is_ground()

    def test_domain_is_the_set_of_arguments(self):
        a = atom("p", Constant("a"), Constant("b"), Constant("a"))
        assert a.domain() == {Constant("a"), Constant("b")}

    def test_variables_recurse_into_function_terms(self):
        a = atom("p", FunctionTerm("f", (Variable("X"),)), Variable("Y"))
        assert a.variables() == {Variable("X"), Variable("Y")}

    def test_constants_only_at_top_level(self):
        a = atom("p", Constant("a"), FunctionTerm("f", (Constant("b"),)))
        assert a.constants() == {Constant("a")}

    def test_str_form(self):
        assert str(atom("p", Constant("a"), Variable("X"))) == "p(a, X)"

    def test_sort_key_orders_by_predicate_then_args(self):
        assert atom("p", Constant("a")).sort_key() < atom("q", Constant("a")).sort_key()
        assert atom("p", Constant("a")).sort_key() < atom("p", Constant("b")).sort_key()


class TestLiteral:
    def test_polarity_and_negation(self):
        a = atom("p", Constant("a"))
        positive = pos(a)
        negative = neg(a)
        assert positive.positive and not negative.positive
        assert positive.negate() == negative
        assert negative.negate() == positive

    def test_literal_exposes_atom_structure(self):
        literal = neg(atom("p", Constant("a"), Variable("X")))
        assert literal.predicate == "p"
        assert literal.args == (Constant("a"), Variable("X"))
        assert not literal.is_ground()
        assert literal.variables() == {Variable("X")}

    def test_str_forms(self):
        a = atom("p", Constant("a"))
        assert str(pos(a)) == "p(a)"
        assert str(neg(a)) == "not p(a)"

    def test_sort_key_puts_positive_before_negative(self):
        a = atom("p", Constant("a"))
        assert pos(a).sort_key() < neg(a).sort_key()

    def test_literals_are_hashable(self):
        a = atom("p", Constant("a"))
        assert len({pos(a), pos(a), neg(a)}) == 2


class TestAtomSetHelpers:
    def test_domain_of_atoms(self):
        atoms = [atom("p", Constant("a")), atom("q", Constant("b"), Constant("a"))]
        assert domain_of_atoms(atoms) == {Constant("a"), Constant("b")}

    def test_variables_of_atoms(self):
        atoms = [atom("p", Variable("X")), atom("q", Variable("Y"), Constant("a"))]
        assert variables_of_atoms(atoms) == {Variable("X"), Variable("Y")}
