"""Unit tests for the incremental fixpoint layer (PR 5 tentpole).

Three layers are covered, each pinned against its from-scratch oracle:

* :class:`repro.lp.fixpoint.IncrementalCondensation` against
  :meth:`RuleIndex.dependency_components_ids` — partition equality plus
  validity of the maintained topological order;
* :class:`repro.lp.wfs.IncrementalWFS` /
  :func:`repro.lp.wfs.well_founded_model_incremental` against
  :func:`repro.lp.wfs.well_founded_model` across monotone program growth;
* :class:`repro.core.engine.WellFoundedEngine(incremental=...)` — the two
  modes must produce identical observables on the paper's programs and
  across budget resumes (the random-program space is covered by
  :mod:`test_incremental_properties`).
"""

from __future__ import annotations

import random

import pytest

from repro.bench.generators import (
    paper_example_program,
    win_move_datalog_pm,
    win_move_game,
)
from repro.chase.segments import clear_segment_stores
from repro.cli import main
from repro.core.engine import WellFoundedEngine
from repro.exceptions import GroundingError
from repro.lang.atoms import Atom
from repro.lang.rules import NormalRule
from repro.lp.fixpoint import IncrementalCondensation
from repro.lp.grounding import GroundProgram, SemiNaiveGrounder, relevant_grounding
from repro.lp.wfs import (
    IncrementalWFS,
    well_founded_model,
    well_founded_model_incremental,
)


def atom(name: str, *args: str) -> Atom:
    from repro.lang.terms import Constant

    return Atom(name, tuple(Constant(a) for a in args))


def assert_same_model(incremental, scratch):
    assert incremental.true_atoms() == scratch.true_atoms()
    assert incremental.false_atoms() == scratch.false_atoms()
    assert incremental.undefined_atoms() == scratch.undefined_atoms()
    assert incremental.universe() == scratch.universe()


def assert_condensation_matches(condensation: IncrementalCondensation, program):
    """Partition equality with the from-scratch Tarjan plus order validity."""
    index = program.index()
    incremental = {frozenset(c) for c in condensation.components_ids()}
    reference = {frozenset(c) for c in index.dependency_components_ids()}
    assert incremental == reference
    # dependencies-first: for every edge head -> body, the body's component
    # must not come after the head's (same component, or strictly earlier)
    position = {
        cid: offset for offset, cid in enumerate(condensation.order())
    }
    for rule_id in range(len(index)):
        head_comp = condensation.component_of_atom(index.head_id(rule_id))
        for atom_id in (*index.pos_ids(rule_id), *index.neg_ids(rule_id)):
            body_comp = condensation.component_of_atom(atom_id)
            assert position[body_comp] <= position[head_comp]


class TestIncrementalCondensation:
    def test_grows_with_rules_and_matches_full_tarjan(self):
        program = GroundProgram()
        condensation = IncrementalCondensation(program.index())
        rules = [
            NormalRule(atom("a"), (atom("b"),)),
            NormalRule(atom("b"), (atom("c"),)),
            NormalRule(atom("c"), (atom("a"),)),  # closes the a-b-c cycle
            NormalRule(atom("d"), (atom("a"),), (atom("e"),)),
            NormalRule(atom("e"), (), (atom("d"),)),
        ]
        for rule in rules:
            program.add(rule)
            update = condensation.refresh()
            assert_condensation_matches(condensation, program)
            assert update.dirty  # every step adds a rule, so something is dirty

    def test_noop_refresh_reports_nothing_dirty(self):
        program = GroundProgram([NormalRule(atom("a"), (atom("b"),))])
        condensation = IncrementalCondensation(program.index())
        condensation.refresh()
        update = condensation.refresh()
        assert not update.dirty and not update.removed
        assert len(update.new_rules) == 0

    def test_merge_reports_removed_components(self):
        program = GroundProgram([NormalRule(atom("a"), (atom("b"),))])
        condensation = IncrementalCondensation(program.index())
        condensation.refresh()
        before = set(condensation.order())
        program.add(NormalRule(atom("b"), (atom("a"),)))  # merges {a} and {b}
        update = condensation.refresh()
        assert update.removed  # at least one of the singletons vanished
        assert update.removed <= before
        assert_condensation_matches(condensation, program)
        merged = condensation.component_of_atom(program.index().atom_id(atom("a")))
        assert set(condensation.members(merged)) == {
            program.index().atom_id(atom("a")),
            program.index().atom_id(atom("b")),
        }

    def test_order_consistent_growth_skips_tarjan(self):
        """The pure deepening pattern — new heads over old bodies — is O(delta)."""
        program = GroundProgram([NormalRule(atom("p0"))])
        condensation = IncrementalCondensation(program.index())
        condensation.refresh()
        reruns_after_seed = condensation.tarjan_reruns
        for layer in range(1, 20):
            program.add(
                NormalRule(atom(f"p{layer}"), (atom(f"p{layer - 1}"),))
            )
            condensation.refresh()
            assert_condensation_matches(condensation, program)
        # a new head depending on an already ordered body never violates the
        # maintained topological order, so no suffix Tarjan ever runs
        assert condensation.tarjan_reruns == reruns_after_seed

    def test_win_move_chunked_growth(self):
        rng = random.Random(7)
        rules = list(relevant_grounding(win_move_game(25, seed=7)))
        rng.shuffle(rules)
        program = GroundProgram()
        condensation = IncrementalCondensation(program.index())
        position = 0
        while position < len(rules):
            step = rng.randint(1, 12)
            program.update(rules[position : position + step])
            position += step
            condensation.refresh()
            assert_condensation_matches(condensation, program)


class TestIncrementalWFS:
    def test_single_shot_equals_from_scratch(self):
        program = GroundProgram(relevant_grounding(win_move_game(20, seed=1)))
        model, state = well_founded_model_incremental(program)
        assert_same_model(model, well_founded_model(GroundProgram(program.rules())))
        assert state.program is program

    def test_chunked_growth_equals_from_scratch_each_step(self):
        for seed in (0, 3, 11):
            rng = random.Random(seed)
            rules = list(relevant_grounding(win_move_game(24, seed=seed)))
            rng.shuffle(rules)
            program = GroundProgram()
            state = None
            position = 0
            while position < len(rules):
                step = rng.randint(1, max(1, len(rules) // 5))
                program.update(rules[position : position + step])
                position += step
                model, state = well_founded_model_incremental(program, state)
                assert_same_model(
                    model, well_founded_model(GroundProgram(program.rules()))
                )

    def test_layered_growth_reuses_lower_layers(self):
        """Chase-shaped growth: each chunk's solutions survive the next chunk."""
        program = GroundProgram()
        solver = IncrementalWFS(program)
        previous_components = 0
        for layer in range(8):
            base = atom(f"q{layer}")
            program.add(NormalRule(base, (), (atom(f"r{layer}"),)))
            program.add(NormalRule(atom(f"r{layer}"), (base,)))
            if layer:
                program.add(NormalRule(atom(f"q{layer}"), (atom(f"q{layer - 1}"),)))
            model = solver.model()
            assert_same_model(model, well_founded_model(GroundProgram(program.rules())))
            if layer:
                # every component solved for the earlier layers is reused
                assert solver.last_reused >= previous_components
            previous_components = len(solver.condensation)

    def test_state_bound_to_other_program_starts_cold(self):
        first = GroundProgram([NormalRule(atom("a"))])
        _, state = well_founded_model_incremental(first)
        second = GroundProgram([NormalRule(atom("b"))])
        model, new_state = well_founded_model_incremental(second, state)
        assert new_state is not state
        assert model.is_true(atom("b")) and not model.is_true(atom("a"))


class TestGroundingDeltas:
    def test_rules_since_returns_the_appended_suffix(self):
        program = GroundProgram([NormalRule(atom("a"))])
        mark = len(program)
        program.add(NormalRule(atom("b"), (atom("a"),)))
        program.add(NormalRule(atom("b"), (atom("a"),)))  # duplicate: ignored
        assert program.rules_since(mark) == (NormalRule(atom("b"), (atom("a"),)),)
        assert program.rules_since(0) == program.rules()

    def test_semi_naive_grounder_exposes_per_run_delta(self):
        program = win_move_game(10, seed=2)
        grounder = SemiNaiveGrounder(program)
        facts = len(grounder.ground)
        grounder.run(max_rounds=1, raise_on_budget=False)
        first = grounder.delta_rules()
        assert len(grounder.ground) == facts + len(first)
        grounder.run()
        second = grounder.delta_rules()
        assert grounder.saturated
        # the two deltas compose to exactly the post-fact suffix, disjointly
        assert grounder.ground.rules_since(facts) == first + second


class TestEngineIncremental:
    def observables(self, engine):
        try:
            model = engine.model()
        except GroundingError:
            return "node-budget-exceeded"
        return (
            model.true_atoms(),
            model.false_atoms(),
            model.undefined_atoms(),
            model.depth,
            model.converged,
        )

    def paired_engines(self, program, database, **options):
        clear_segment_stores()
        fast = WellFoundedEngine(program, database, incremental=True, **options)
        clear_segment_stores()
        slow = WellFoundedEngine(program, database, incremental=False, **options)
        return fast, slow

    def test_paper_example_identical(self):
        program, database = paper_example_program(2)
        fast, slow = self.paired_engines(program, database)
        assert self.observables(fast) == self.observables(slow)
        assert fast.model().converged

    def test_win_move_identical(self):
        program, database = win_move_datalog_pm(40, seed=5)
        fast, slow = self.paired_engines(program, database)
        assert self.observables(fast) == self.observables(slow)

    def test_incremental_engine_reuses_components_across_depths(self):
        program, database = paper_example_program(4)
        clear_segment_stores()
        engine = WellFoundedEngine(program, database, incremental=True)
        model = engine.model()
        assert model.iterations > 1  # the schedule actually deepened
        solver = engine._wfs_state
        assert solver is not None
        assert solver.last_reused > 0  # the last depth step reused solutions

    def test_budget_resume_identical_across_modes(self):
        program, database = win_move_datalog_pm(60, seed=0)
        fast, slow = self.paired_engines(
            program, database, max_nodes=10, segment_cache=False
        )
        assert self.observables(fast) == "node-budget-exceeded"
        assert self.observables(slow) == "node-budget-exceeded"
        fast.max_nodes = 100_000
        slow.max_nodes = 100_000
        assert self.observables(fast) == self.observables(slow)
        assert self.observables(fast) != "node-budget-exceeded"

    def test_query_stats_report_the_mode(self):
        program, database = paper_example_program()
        clear_segment_stores()
        engine = WellFoundedEngine(program, database)
        engine.holds("? article(pods13)")
        assert engine.last_query_stats["incremental"] is True
        clear_segment_stores()
        engine = WellFoundedEngine(program, database, incremental=False)
        engine.holds("? article(pods13)")
        assert engine.last_query_stats["incremental"] is False


PROGRAM_TEXT = """
conferencePaper(X) -> article(X).
scientist(X) -> exists Y isAuthorOf(X, Y).
scientist(john).
conferencePaper(pods13).
"""


class TestCLIIncrementalFlag:
    @pytest.fixture()
    def program_file(self, tmp_path):
        path = tmp_path / "literature.dlp"
        path.write_text(PROGRAM_TEXT)
        return str(path)

    def test_no_incremental_answers_identically(self, program_file, capsys):
        assert main([program_file, "--query", "? article(pods13)"]) == 0
        default_output = capsys.readouterr().out
        assert (
            main([program_file, "--no-incremental", "--query", "? article(pods13)"])
            == 0
        )
        assert capsys.readouterr().out == default_output

    def test_incremental_is_the_default(self):
        from repro.cli import build_argument_parser

        args = build_argument_parser().parse_args(["prog.dlp"])
        assert args.incremental is True
        args = build_argument_parser().parse_args(["prog.dlp", "--no-incremental"])
        assert args.incremental is False
