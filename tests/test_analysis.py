"""Unit tests for the static-analysis subsystem (:mod:`repro.analysis`).

Covers the diagnostics framework (stable codes, ordering, exit codes), the
lint rules, the dependency-graph analyzer with its minimal negative-cycle
witness, the chase-termination hierarchy (with one pinned program per strict
widening step), the planner verdicts, the engine integrations (magic
eligibility widened to joint/super-weak acyclicity, the materialized-engine
termination gate) and the ``repro analyze`` CLI verb.  Every registered
scenario is run through the analyzer as a regression corpus.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    CODE_TABLE,
    AnalysisReport,
    Diagnostic,
    Severity,
    TerminationVerdict,
    analyze,
    analyze_dependencies,
    guardedness_profile,
    is_jointly_acyclic,
    is_super_weakly_acyclic,
    is_weakly_acyclic,
    lint_rules,
    make_report,
    negative_cycle_witness,
    plan_engine,
    termination_verdict,
    weak_acyclicity_violation,
)
from repro.analysis.cli import analyze_main
from repro.core.engine import WellFoundedEngine
from repro.exceptions import AnalysisError
from repro.lang.atoms import Atom, pos
from repro.lang.parser import parse_atom, parse_normal_program, parse_program, parse_query
from repro.lang.rules import NormalRule
from repro.lang.skolem import skolemize_program
from repro.lang.terms import Constant, Variable
from repro.rewrite.magic import rewrite_for_query, _weak_acyclicity_violation
from repro.scenarios import build_scenario, scenario_names
from repro.views import MaterializedEngine

X, Y = Variable("X"), Variable("Y")


def skolemized(text: str) -> list[NormalRule]:
    """The skolemized normal rules of a textual Datalog± program."""
    ntgds, _ = parse_program(text)
    return list(skolemize_program(ntgds).rules())


#: One pinned program per level of the hierarchy, each accepted by its level
#: and rejected by every narrower one (the containment tests below rely on
#: exactly this structure).
HIERARCHY_PINS = {
    "function-free": "e(a, b). e(X, Y) -> t(X, Y).",
    # fresh values, no recursion through them
    "weak": "p(X) -> exists Y q(X, Y).",
    # weakly cyclic (a[1] -> a[1] through the Skolem position) but the nulls
    # can never satisfy b(Y), so the feeds graph is empty
    "joint": "a(X, Y), b(Y) -> exists Z a(Y, Z).",
    # jointly cyclic (position p[0] feeds itself) but p(·, b) never unifies
    # with the body pattern p(·, a)
    "super-weak": "p(X, a) -> exists Z p(Z, b).",
    None: "p(X) -> exists Y p(Y).",
}

#: The skolemization of an existential variable repeated in the head: ONE null
#: fills both positions of ``p`` simultaneously, so ``p(U, U)`` matches it and
#: the chase diverges.  Every criterion must reject this program (regression
#: pin: the joint/super-weak Move sets used to be seeded with a single head
#: position, unsoundly accepting it as terminating).
REPEATED_SKOLEM = "b(X) -> exists Z p(Z, Z). p(U, U) -> b(U)."


class TestDiagnostics:
    def test_severity_is_derived_from_the_code_prefix(self):
        assert Diagnostic("E101", "m").severity is Severity.ERROR
        assert Diagnostic("W202", "m").severity is Severity.WARNING
        assert Diagnostic("I301", "m").severity is Severity.INFO

    def test_unknown_codes_are_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("E999", "no such code")

    def test_every_code_has_a_severity_prefix(self):
        assert all(code[0] in "EWI" for code in CODE_TABLE)

    def test_reports_order_errors_first_deterministically(self):
        report = make_report(
            [
                Diagnostic("I301", "c", predicate="p"),
                Diagnostic("W202", "b", rule_index=3),
                Diagnostic("E101", "a", predicate="q"),
                Diagnostic("W202", "b", rule_index=1),
            ]
        )
        assert [d.code for d in report] == ["E101", "W202", "W202", "I301"]
        assert [d.rule_index for d in report.by_code("W202")] == [1, 3]

    def test_exit_codes(self):
        errors = make_report([Diagnostic("E101", "m")])
        warnings = make_report([Diagnostic("W204", "m")])
        infos = make_report([Diagnostic("I302", "m")])
        assert errors.exit_code() == errors.exit_code(strict=True) == 2
        assert warnings.exit_code() == 0
        assert warnings.exit_code(strict=True) == 1
        assert infos.exit_code() == infos.exit_code(strict=True) == 0
        assert infos.is_clean(strict=True)
        assert not warnings.is_clean(strict=True)

    def test_render_and_json_are_stable(self):
        diagnostic = Diagnostic("W204", "never fires", rule_index=2, predicate="p")
        assert diagnostic.render() == (
            "W204 warning: never fires  [rule 2, predicate p]"
        )
        report = make_report([diagnostic], verdicts={"stratified": True})
        document = json.loads(report.to_json_text())
        assert document["diagnostics"][0]["code"] == "W204"
        assert document["verdicts"]["stratified"] is True
        assert document["exit_code"] == 0
        assert document["exit_code_strict"] == 1
        assert "stratified = True" in report.render()


class TestLint:
    def test_inconsistent_arities_are_an_error(self):
        rules = parse_normal_program("p(X) -> q(X). q(X, X) -> r(X).").rules()
        codes = {d.code for d in lint_rules(rules)}
        assert "E101" in codes

    def test_magic_namespace_collision_is_flagged(self):
        rules = [NormalRule(Atom("__magic_b__p", (X,)), (Atom("q", (X,)),), ())]
        findings = lint_rules(rules)
        assert [d.code for d in findings] == ["W201"]

    def test_duplicate_rules_flag_the_later_copy(self):
        rules = parse_normal_program(
            "e(X, Y) -> r(X, Y). e(A, B) -> r(A, B)."
        ).rules()
        findings = [d for d in lint_rules(rules) if d.code == "W202"]
        assert len(findings) == 1
        assert findings[0].rule_index == 1

    def test_subsumed_rule_is_flagged(self):
        rules = parse_normal_program(
            "e(X, Y) -> r(X, Y). e(X, Y), n(Y) -> r(X, Y)."
        ).rules()
        findings = [d for d in lint_rules(rules) if d.code == "W203"]
        assert len(findings) == 1
        assert findings[0].rule_index == 1

    def test_unsatisfiable_body_is_flagged(self):
        rules = parse_normal_program("p(X), not p(X) -> q(X).").rules()
        findings = [d for d in lint_rules(rules) if d.code == "W204"]
        assert len(findings) == 1

    def test_case_collision_is_flagged(self):
        rules = parse_normal_program("edge(X, Y) -> r(X, Y). Edge(X, Y) -> r(X, Y).").rules()
        codes = {d.code for d in lint_rules(rules)}
        assert "W205" in codes

    def test_reachability_lints_need_a_database(self):
        rules = parse_normal_program("ghost(X) -> out(X).").rules()
        assert not any(d.code.startswith("I3") for d in lint_rules(rules))
        with_db = lint_rules(rules, database_atoms=[parse_atom("seen(a)")])
        codes = {d.code for d in with_db}
        assert "I301" in codes  # ghost has no source
        assert "I302" in codes  # out is never consumed

    def test_queries_mark_predicates_consumed(self):
        rules = parse_normal_program("seen(X) -> out(X).").rules()
        query = parse_query("? out(X)")
        findings = lint_rules(
            rules, database_atoms=[parse_atom("seen(a)")], queries=[query]
        )
        assert not any(d.code == "I302" for d in findings)


class TestDependencyGraph:
    def test_stratified_program_gets_strata(self):
        analysis = analyze_dependencies(
            parse_normal_program("e(X, Y) -> r(X, Y). r(X, Y), not b(X) -> g(X).")
        )
        assert analysis.stratified
        assert analysis.negative_cycle is None
        assert analysis.strata["g"] > analysis.strata["b"]

    def test_win_move_self_loop_witness(self):
        analysis = analyze_dependencies(
            parse_normal_program("move(X, Y), not win(Y) -> win(X).")
        )
        assert not analysis.stratified
        assert analysis.negative_cycle == ("win", "win")
        assert analysis.recursive

    def test_mutual_negation_witness(self):
        analysis = analyze_dependencies(
            parse_normal_program("s(X), not q(X) -> p(X). s(X), not p(X) -> q(X).")
        )
        assert analysis.negative_cycle in {("p", "q", "p"), ("q", "p", "q")}
        # deterministic: the lexicographically first head wins the tie-break
        assert analysis.negative_cycle == ("p", "q", "p")

    def test_witness_is_minimal(self):
        # p -> not q -> r -> p (length 3) and win -> not win (length 1):
        # the short loop must be the witness
        analysis = analyze_dependencies(
            parse_normal_program(
                "s(X), not q(X) -> p(X). r(X) -> q(X). p(X) -> r(X)."
                " move(X, Y), not win(Y) -> win(X)."
            )
        )
        assert analysis.negative_cycle == ("win", "win")
        assert negative_cycle_witness(
            analysis.positive_edges, analysis.negative_edges
        ) == ("win", "win")

    def test_guardedness_profile(self):
        ntgds, _ = parse_program(
            "p(X) -> exists Y q(X, Y)."          # linear (hence guarded)
            " e(X, Y), p(X), p(Y) -> r(X, Y)."   # guarded by e(X, Y)
            " p(X), p(Y) -> r(X, Y)."            # unguarded
        )
        profile = guardedness_profile(ntgds)
        assert (profile.guarded, profile.linear, profile.unguarded) == (2, 1, 1)
        assert profile.unguarded_rule_indices == (2,)
        assert not profile.all_guarded


class TestTerminationHierarchy:
    @pytest.mark.parametrize("expected", list(HIERARCHY_PINS))
    def test_pinned_verdicts(self, expected):
        verdict = termination_verdict(skolemized(HIERARCHY_PINS[expected]))
        assert verdict.criterion == expected

    def test_each_level_strictly_widens(self):
        weak = skolemized(HIERARCHY_PINS["weak"])
        joint = skolemized(HIERARCHY_PINS["joint"])
        super_weak = skolemized(HIERARCHY_PINS["super-weak"])
        cyclic = skolemized(HIERARCHY_PINS[None])
        assert is_weakly_acyclic(weak)
        assert not is_weakly_acyclic(joint)
        assert is_jointly_acyclic(joint)
        assert not is_jointly_acyclic(super_weak)
        assert is_super_weakly_acyclic(super_weak)
        assert not is_super_weakly_acyclic(cyclic)

    def test_repeated_head_skolem_is_rejected_by_every_criterion(self):
        rules = skolemized(REPEATED_SKOLEM)
        assert not is_weakly_acyclic(rules)
        assert not is_jointly_acyclic(rules)
        assert not is_super_weakly_acyclic(rules)
        verdict = termination_verdict(rules)
        assert verdict.criterion is None
        assert "not super-weakly acyclic" in verdict.reason

    def test_benign_repeated_head_skolem_is_still_accepted(self):
        # same repeated-existential head, but nothing feeds the null back
        verdict = termination_verdict(skolemized("s(X) -> exists Z p(Z, Z)."))
        assert verdict.criterion == "weak"

    def test_acceptance_implies_wider_acceptance(self):
        for text in HIERARCHY_PINS.values():
            rules = skolemized(text)
            if is_weakly_acyclic(rules):
                assert is_jointly_acyclic(rules)
            if is_jointly_acyclic(rules):
                assert is_super_weakly_acyclic(rules)

    def test_verdict_names_the_next_narrower_failure(self):
        joint = termination_verdict(skolemized(HIERARCHY_PINS["joint"]))
        assert joint.criterion == "joint"
        assert "not weakly acyclic" in joint.reason
        super_weak = termination_verdict(skolemized(HIERARCHY_PINS["super-weak"]))
        assert "not jointly acyclic" in super_weak.reason
        rejected = termination_verdict(skolemized(HIERARCHY_PINS[None]))
        assert not rejected.terminating
        assert "not super-weakly acyclic" in rejected.reason

    def test_accepts_at_least(self):
        verdict = TerminationVerdict("joint")
        assert verdict.accepts_at_least("joint")
        assert verdict.accepts_at_least("super-weak")
        assert not verdict.accepts_at_least("weak")
        assert not TerminationVerdict(None).accepts_at_least("super-weak")
        with pytest.raises(ValueError):
            verdict.accepts_at_least("no-such-criterion")

    def test_paper_example_is_rejected_by_every_criterion(self):
        from repro.bench.generators import paper_example_program

        program, _ = paper_example_program()
        verdict = termination_verdict(skolemize_program(program).rules())
        assert verdict.criterion is None


class TestPlanner:
    def test_parse_errors_become_e102(self):
        report = analyze("p(X :- broken")
        assert report.codes() == {"E102"}
        assert report.exit_code() == 2

    def test_unguarded_rules_get_w206(self):
        report = analyze("p(X), p(Y) -> r(X, Y).")
        assert "W206" in report.codes()

    def test_non_terminating_program_gets_w207_and_run_and_check(self):
        report = analyze(HIERARCHY_PINS[None])
        assert "W207" in report.codes()
        plan = plan_engine(report)
        assert plan["run_and_check"]
        assert not plan["magic_eligible"]
        assert not plan["materializable"]

    def test_verdict_keys_are_stable(self):
        report = analyze("move(a, b). move(X, Y), not win(Y) -> win(X).")
        expected = {
            "termination_criterion",
            "termination_reason",
            "chase_terminates",
            "stratified",
            "negative_cycle",
            "strata_count",
            "recursive",
            "guarded",
            "guardedness",
            "existential",
            "plan",
        }
        assert expected <= set(report.verdicts)
        assert report.verdicts["termination_criterion"] == "function-free"
        assert report.verdicts["stratified"] is False
        assert report.verdicts["negative_cycle"] == ["win", "win"]
        assert "I303" in report.codes()

    def test_accepts_every_program_representation(self):
        text = "e(a, b). e(X, Y) -> t(X, Y)."
        ntgds, database = parse_program(text)
        normal = parse_normal_program("e(X, Y) -> t(X, Y).")
        for program in (text, ntgds, normal, list(normal.rules()), list(ntgds)):
            report = analyze(program, database)
            assert report.verdicts["termination_criterion"] == "function-free"

    def test_plan_engine_defaults_on_empty_report(self):
        plan = plan_engine(make_report([]))
        assert plan == {
            "magic_eligible": False,
            "materializable": False,
            "run_and_check": True,
            "stratified_fastpath": False,
        }


class TestEngineIntegration:
    def test_classic_query_stats_carry_the_analysis(self):
        engine = WellFoundedEngine(
            "move(a, b). move(X, Y), not win(Y) -> win(X).", rewrite=False
        )
        assert engine.holds(parse_atom("win(a)"))
        summary = engine.last_query_stats["analysis"]
        assert summary["termination"] == "function-free"
        assert summary["chase_terminates"] is True
        assert summary["stratified"] is False
        assert summary["errors"] == 0

    def test_engine_analysis_report_is_cached(self):
        engine = WellFoundedEngine("e(a, b). e(X, Y) -> t(X, Y).")
        report = engine.analysis()
        assert isinstance(report, AnalysisReport)
        assert engine.analysis() is report


class TestMagicWidening:
    #: jointly-acyclic but weakly-cyclic: the Skolem position a[1] sits on a
    #: position-graph cycle, but its nulls can never satisfy b(Y)
    JA_NOT_WA = """
    s(X) -> a(X, X).
    a(X, Y), b(Y) -> exists Z a(Y, Z).
    s(c). b(c). s(d).
    """

    def test_pinned_program_is_ja_not_wa(self):
        rules = skolemized(self.JA_NOT_WA)
        assert weak_acyclicity_violation(rules) is not None
        assert _weak_acyclicity_violation(rules) is not None  # the magic shim
        assert is_jointly_acyclic(rules)

    def test_magic_accepts_the_ja_program(self):
        rules = skolemized(self.JA_NOT_WA)
        plan = rewrite_for_query(rules, [pos(Atom("a", (Constant("c"), Constant("c"))))])
        assert plan.supported
        assert plan.termination_criterion == "joint"

    def test_magic_answers_are_bit_identical_to_classic(self):
        queries = [
            "? a(c, c)",
            "? a(d, d)",
            "? a(e, e)",
            "? b(c)",
            "? a(c, c), not b(d)",
        ]
        engine = WellFoundedEngine(self.JA_NOT_WA)
        for text in queries:
            query = parse_query(text)
            magic = engine.holds(query, rewrite=True)
            classic = engine.holds(query, rewrite=False)
            assert magic == classic, text
        # the widened path really is the magic fast path, not a fallback
        engine.holds(parse_query("? a(d, d)"), rewrite=True)
        stats = engine.last_query_stats
        assert stats["mode"] == "magic"
        assert stats["termination_criterion"] == "joint"

    def test_magic_still_rejects_fully_cyclic_programs(self):
        rules = skolemized(HIERARCHY_PINS[None])
        plan = rewrite_for_query(rules, [pos(Atom("p", (Constant("a"),)))])
        assert not plan.supported
        assert plan.termination_criterion is None
        assert "no static termination criterion" in plan.reason

    def test_magic_rejects_the_repeated_skolem_program(self):
        rules = skolemized(REPEATED_SKOLEM)
        plan = rewrite_for_query(rules, [pos(Atom("b", (Constant("c"),)))])
        assert not plan.supported
        assert plan.termination_criterion is None


class TestMaterializedTermination:
    CYCLIC = "grow(X) -> grow(f(X))."

    def test_cyclic_program_is_rejected_with_a_diagnostic(self):
        rules = parse_normal_program(self.CYCLIC)
        with pytest.raises(AnalysisError) as excinfo:
            MaterializedEngine(rules, ())
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].code == "E103"
        assert "check_termination=False" in str(excinfo.value)

    def test_opt_out_restores_budgeted_maintenance(self):
        rules = parse_normal_program(self.CYCLIC)
        engine = MaterializedEngine(rules, (), max_atoms=50, check_termination=False)
        assert engine.termination_criterion is None

    def test_repeated_skolem_program_is_rejected(self):
        with pytest.raises(AnalysisError) as excinfo:
            MaterializedEngine(skolemized(REPEATED_SKOLEM), ())
        assert excinfo.value.diagnostics[0].code == "E103"

    def test_terminating_program_records_its_criterion(self):
        engine = MaterializedEngine(
            parse_normal_program("e(X, Y) -> r(X, Y)."), [parse_atom("e(a, b)")]
        )
        assert engine.termination_criterion == "function-free"
        assert engine.holds(parse_atom("r(a, b)"))


class TestScenarioCorpus:
    """Every registered scenario must analyze cleanly — a regression corpus."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_analyzes_without_findings(self, name):
        bundle = build_scenario(name)
        queries = [parse_query(text) for text in bundle.queries]
        report = analyze(bundle.program, bundle.database, queries=queries)
        assert report.exit_code(strict=True) == 0, report.render()
        assert report.verdicts["chase_terminates"] is True
        assert plan_engine(report)["materializable"]


class TestAnalyzeCLI:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.dlv"
        target.write_text("e(a, b). e(X, Y) -> t(X, Y).")
        assert analyze_main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "termination_criterion = function-free" in out

    def test_strict_exit_on_warnings(self, tmp_path):
        target = tmp_path / "cyclic.dlv"
        target.write_text("p(a). p(X) -> exists Y p(Y).")
        assert analyze_main([str(target)]) == 0
        assert analyze_main([str(target), "--strict"]) == 1

    def test_ill_formed_file_exits_two(self, tmp_path):
        target = tmp_path / "broken.dlv"
        target.write_text("p(X :- broken")
        assert analyze_main([str(target)]) == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert analyze_main([str(tmp_path / "missing.dlv")]) == 2
        assert "missing.dlv" in capsys.readouterr().err

    def test_json_document_shape(self, tmp_path, capsys):
        target = tmp_path / "clean.dlv"
        target.write_text("e(a, b). e(X, Y) -> t(X, Y).")
        assert analyze_main([str(target), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {"targets", "failures", "strict", "exit_code"}
        (report,) = document["targets"].values()
        assert report["exit_code"] == 0
        assert report["verdicts"]["termination_criterion"] == "function-free"

    def test_all_scenarios_are_strict_clean(self, capsys):
        assert analyze_main(["--all-scenarios", "--strict", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["targets"]) == len(scenario_names())

    def test_python_example_with_program_constant(self, tmp_path):
        target = tmp_path / "example.py"
        target.write_text('PROGRAM = "e(a, b). e(X, Y) -> t(X, Y)."\n')
        assert analyze_main([str(target)]) == 0

    def test_python_example_with_analyze_target_hook(self, tmp_path):
        target = tmp_path / "hooked.py"
        target.write_text(
            "def analyze_target():\n"
            '    return ("e(X, Y) -> t(X, Y).", [])\n'
        )
        assert analyze_main([str(target)]) == 0
