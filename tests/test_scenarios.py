"""The scenario corpus: registry sanity, cross-configuration differentials,
trace replay with checkpoints, uniform query statistics, and the CLI verbs.

The cross-product suite is the corpus's reason to exist: every registered
scenario must answer bit-identically across every engine configuration
(``backend`` × ``rewrite`` × ``incremental``), and the maintained
:class:`repro.views.MaterializedEngine` must equal its from-scratch oracle at
every ``!check`` checkpoint of the scenario's trace.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.engine import WellFoundedEngine
from repro.lang.parser import parse_query
from repro.scenarios import (
    ScenarioBundle,
    build_scenario,
    build_target,
    get_scenario,
    record_trace,
    replay_scenario,
    replay_trace,
    scenario_names,
)
from repro.scenarios.cli import scenarios_main
from repro.views import MaterializedEngine

#: Small per-scenario builds so the cross-product stays tier-1 fast.
SMALL = {
    "telemetry-rca": {"size": 6, "trace_length": 18, "checkpoint_every": 6},
    "access-control": {"size": 4, "trace_length": 18, "checkpoint_every": 6},
    "win-move": {"size": 6, "trace_length": 18, "checkpoint_every": 6},
    "lubm-university": {"size": 1, "students": 2, "trace_length": 14, "checkpoint_every": 7},
    "supply-chain": {"size": 6, "trace_length": 18, "checkpoint_every": 6},
}

ALL_NAMES = sorted(SMALL)

BACKENDS = ("tuple", "columnar", "sqlite")


def small_bundle(name: str, **extra) -> ScenarioBundle:
    params = dict(SMALL[name])
    params.update(extra)
    return build_scenario(name, **params)


def answer_map(engine, queries) -> dict:
    """query text -> frozenset of answers (or the Boolean), via the engine."""
    results = {}
    for text in queries:
        query = parse_query(text)
        if query.variables() and not query.negative:
            results[text] = frozenset(engine.answer(text))
        else:
            results[text] = engine.holds(text)
    return results


# ---------------------------------------------------------------------------
# registry sanity
# ---------------------------------------------------------------------------


def test_registry_lists_the_corpus():
    names = scenario_names()
    assert set(ALL_NAMES) <= set(names)
    assert names == sorted(names)
    for name in names:
        scenario = get_scenario(name)
        assert scenario.description
        assert {"size", "seed", "trace_length"} <= set(scenario.defaults)


def test_unknown_scenario_raises_with_known_names():
    with pytest.raises(KeyError, match="telemetry-rca"):
        get_scenario("nope")


def test_unknown_parameter_is_rejected():
    with pytest.raises(ValueError, match="chain_length"):
        build_scenario("win-move", chain_length=9)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_bundles_are_deterministic(name):
    first = small_bundle(name)
    second = small_bundle(name)
    assert first.trace == second.trace
    assert set(first.database) == set(second.database)
    assert first.queries == second.queries
    assert first.dynamic_facts == second.dynamic_facts


@pytest.mark.parametrize("name", ALL_NAMES)
def test_bundle_shape(name):
    bundle = small_bundle(name)
    assert bundle.queries and bundle.dynamic_facts and bundle.trace
    # initially_present is exactly the pool members already in the database,
    # which is what makes the generated trace replayable from that state
    present = {atom for atom in bundle.dynamic_facts if atom in bundle.database}
    assert set(bundle.initially_present) == present
    assert bundle.trace[-1].kind == "check"
    seen_updates = sum(1 for event in bundle.trace if event.is_update)
    assert seen_updates > 0


def test_regenerate_trace_varies_with_seed():
    bundle = small_bundle("telemetry-rca")
    assert bundle.regenerate_trace(seed=1) != bundle.regenerate_trace(seed=2)
    assert bundle.regenerate_trace(seed=1) == bundle.regenerate_trace(seed=1)


# ---------------------------------------------------------------------------
# cross-configuration differential: every config answers identically
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
def test_answers_identical_across_all_configurations(name):
    """backend × rewrite × incremental never changes a scenario's answers."""
    bundle = small_bundle(name)
    baseline = None
    for backend, rewrite, incremental in itertools.product(
        BACKENDS, (False, True), (False, True)
    ):
        engine = WellFoundedEngine(
            bundle.program,
            bundle.database,
            backend=backend,
            rewrite=rewrite,
            incremental=incremental,
        )
        answers = answer_map(engine, bundle.queries)
        if baseline is None:
            baseline = answers
        else:
            assert answers == baseline, (
                f"{name} diverged under backend={backend} "
                f"rewrite={rewrite} incremental={incremental}"
            )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_maintained_engine_matches_well_founded_engine(name):
    """The two engine types agree on every bundled query of the corpus."""
    bundle = small_bundle(name)
    maintained = MaterializedEngine(bundle.program, bundle.database, backend="columnar")
    reference = WellFoundedEngine(bundle.program, bundle.database)
    assert answer_map(maintained, bundle.queries) == answer_map(
        reference, bundle.queries
    )


# ---------------------------------------------------------------------------
# trace replay with differential checkpoints
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_replay_checkpoints_never_diverge(name, backend):
    bundle, report = replay_scenario(
        name, backend=backend, check=True, **SMALL[name]
    )
    assert report.ok, report.divergences
    assert report.exit_code == 0
    assert report.checks > 0
    assert report.events == len([e for e in bundle.trace if e.kind != "think"])


@pytest.mark.parametrize("name", ALL_NAMES)
def test_rebuild_target_answers_match_materialized(name):
    """The cold-rebuild baseline serves the same answers as the warm engine."""
    bundle = small_bundle(name)
    warm = build_target(bundle, engine="materialized")
    cold = build_target(bundle, engine="rebuild")
    warm_report = replay_trace(bundle.trace, warm)
    cold_report = replay_trace(bundle.trace, cold)
    warm_answers = [r.detail for r in warm_report.records if r.kind == "query"]
    cold_answers = [r.detail for r in cold_report.records if r.kind == "query"]
    assert warm_answers == cold_answers
    assert cold.rebuilds > 1  # the baseline actually paid for rebuilds


def test_recorded_expectations_replay_on_every_backend():
    """A trace recorded on one backend self-verifies on all the others."""
    bundle = small_bundle("access-control")
    recorded, report = record_trace(
        bundle.trace, build_target(bundle, backend="columnar")
    )
    assert report.ok
    assert any(event.kind == "expect" for event in recorded)
    for backend in BACKENDS:
        replayed = replay_trace(recorded, build_target(bundle, backend=backend))
        assert replayed.ok, (backend, replayed.divergences)
        assert replayed.expects > 0


# ---------------------------------------------------------------------------
# uniform query statistics (both engine types, one shape)
# ---------------------------------------------------------------------------

UNIFORM_KEYS = {"seconds", "rounds", "cache_hit", "backend"}


def test_query_stats_share_one_shape_across_engines():
    bundle = small_bundle("telemetry-rca")
    maintained = MaterializedEngine(bundle.program, bundle.database)
    classic = WellFoundedEngine(bundle.program, bundle.database)
    rewriting = WellFoundedEngine(bundle.program, bundle.database, rewrite=True)
    for engine in (maintained, classic, rewriting):
        engine.holds(bundle.queries[0])
        stats = engine.last_query_stats
        assert UNIFORM_KEYS <= set(stats), type(engine).__name__
        assert stats["cache_hit"] is False
        assert stats["seconds"] >= 0.0
        assert isinstance(stats["rounds"], int)
        engine.holds(bundle.queries[0])
        assert engine.last_query_stats["cache_hit"] is True


def test_update_stats_expose_wall_clock_and_rounds():
    bundle = small_bundle("telemetry-rca")
    engine = MaterializedEngine(bundle.program, bundle.database)
    fact = next(
        atom for atom in bundle.dynamic_facts if atom not in engine.edb
    )
    stats = engine.add_facts(fact)
    assert stats["seconds"] >= 0.0
    assert stats["rounds"] == stats["grounding_rounds"]
    assert stats["backend"] == engine.backend
    stats = engine.retract_facts(fact)
    assert {"seconds", "rounds", "backend"} <= set(stats)


def test_replay_counts_cache_hits_from_the_uniform_stats():
    bundle = small_bundle("access-control")
    # consecutive queries with no update in between must hit the model cache
    trace = [e for e in bundle.trace if e.kind == "check"][:1]
    from repro.scenarios import query_event

    trace = [query_event(bundle.queries[0]), query_event(bundle.queries[1])]
    report = replay_trace(trace, build_target(bundle))
    assert report.query_cache_misses == 1
    assert report.query_cache_hits == 1


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


def test_cli_list_names_every_scenario(capsys):
    assert scenarios_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_NAMES:
        assert name in out


def test_cli_run_answers_queries(capsys):
    assert scenarios_main(["run", "win-move", "--size", "5"]) == 0
    out = capsys.readouterr().out
    assert "? win(X)" in out


def test_cli_unknown_scenario_exits_2(capsys):
    assert scenarios_main(["replay", "missing-scenario"]) == 2
    assert "registered" in capsys.readouterr().err


def test_cli_unknown_flag_exits_nonzero():
    # `run` is one-shot: it has no --length flag, so argparse rejects it
    with pytest.raises(SystemExit):
        scenarios_main(["run", "win-move", "--length", "8"])


def test_cli_replay_with_check_passes(capsys):
    code = scenarios_main(
        ["replay", "supply-chain", "--size", "5", "--length", "12", "--check"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "differential" in out


def test_cli_record_then_replay_round_trips(tmp_path, capsys):
    trace_file = tmp_path / "policy.trace"
    code = scenarios_main(
        [
            "record", "access-control",
            "--size", "4", "--length", "10",
            "--out", str(trace_file),
        ]
    )
    assert code == 0
    assert trace_file.exists()
    code = scenarios_main(
        [
            "replay", "access-control",
            "--size", "4",
            "--trace", str(trace_file),
            "--json", str(tmp_path / "report.json"),
        ]
    )
    assert code == 0
    capsys.readouterr()
    import json

    summary = json.loads((tmp_path / "report.json").read_text())
    assert summary["ok"] is True
    assert summary["scenario"] == "access-control"


def test_main_cli_dispatches_the_scenarios_verb(capsys):
    from repro.cli import main

    assert main(["scenarios", "list"]) == 0
    assert "win-move" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# long-trace stress replay (runs under -m stress; CI's scheduled job)
# ---------------------------------------------------------------------------


@pytest.mark.stress
@pytest.mark.parametrize("name", ALL_NAMES)
def test_long_trace_replay_stays_faithful(name):
    """Hundreds of churn events with checkpoints on: no divergence, ever."""
    overrides = {k: v for k, v in SMALL[name].items() if k not in ("trace_length", "checkpoint_every")}
    bundle, report = replay_scenario(
        name, check=True, trace_length=400, checkpoint_every=25, **overrides
    )
    assert report.ok, report.divergences
    assert report.checks >= 16
    assert report.latency_summary("insert", "retract")["count"] > 100
