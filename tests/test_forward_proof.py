"""Tests for forward proofs and the Ŵ_P operator (:mod:`repro.core.forward_proof`).

These replay Example 6 and Example 9 of the paper on the materialised chase
segment: the unique minimal forward proofs of ``R(0,b,c)`` and ``P(0,a)``,
their negative hypotheses, and the fixpoint of Ŵ_P containing
``T(0)`` / ``¬S(0)`` (the literals that need a transfinite iteration on the
infinite forest).
"""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom
from repro.lang.terms import Constant, FunctionTerm
from repro.lp.interpretation import Interpretation
from repro.core.forward_proof import (
    find_forward_proof,
    provable_atoms,
    what_fixpoint,
    what_operator,
)


def skolem_chain(depth):
    """The terms t_0=0, t_1=1, t_{i+2} = sk(0, t_i, t_{i+1}) of Example 9."""
    terms = [Constant("0"), Constant("1")]
    for _ in range(depth):
        terms.append(FunctionTerm("sk_r0_W", (Constant("0"), terms[-2], terms[-1])))
    return terms


@pytest.fixture(scope="module")
def example_forest(paper_example_engine):
    return paper_example_engine.chase_forest()


class TestForwardProofs:
    def test_r_chain_has_a_proof_with_no_negative_hypotheses(self, example_forest):
        terms = skolem_chain(4)
        target = Atom("r", (Constant("0"), terms[3], terms[4]))
        proof = find_forward_proof(example_forest, target)
        assert proof is not None
        assert proof.negative_hypotheses == frozenset()

    def test_p_atom_proof_carries_q_hypotheses(self, example_forest):
        terms = skolem_chain(2)
        target = Atom("p", (Constant("0"), terms[2]))  # the paper's P(0, a)
        proof = find_forward_proof(example_forest, target)
        assert proof is not None
        # N(pi') = {Q(1), Q(a)} in the paper's notation
        hypotheses = {str(atom) for atom in proof.negative_hypotheses}
        assert hypotheses == {"q(1)", f"q({terms[2]})"}

    def test_atom_without_node_has_no_proof(self, example_forest):
        assert find_forward_proof(example_forest, parse_atom("q(0)")) is None

    def test_allowed_negatives_can_block_proofs(self, example_forest):
        terms = skolem_chain(2)
        target = Atom("p", (Constant("0"), terms[2]))
        # Forbid assuming q(1) false: the only proof of P(0, a) needs it.
        blocked = find_forward_proof(
            example_forest, target, allowed_negatives=lambda atom: str(atom) != "q(1)"
        )
        assert blocked is None

    def test_proofs_are_closed_under_parents(self, example_forest):
        terms = skolem_chain(2)
        proof = find_forward_proof(example_forest, Atom("p", (Constant("0"), terms[2])))
        for node_id in proof.nodes:
            parent = example_forest.node(node_id).parent
            if parent is not None:
                assert parent in proof.nodes


class TestProvableAtoms:
    def test_everything_reachable_when_all_negatives_allowed(self, example_forest):
        atoms = provable_atoms(example_forest, lambda _a: True)
        assert parse_atom("s(0)") in atoms
        assert parse_atom("t(0)") in atoms

    def test_nothing_negative_allowed_still_proves_the_positive_chain(self, example_forest):
        atoms = provable_atoms(example_forest, lambda _a: False)
        assert parse_atom("p(0,0)") in atoms
        terms = skolem_chain(2)
        assert Atom("r", (Constant("0"), Constant("1"), terms[2])) in atoms
        # p(0, 1) needs ¬q(1), so it is not provable without negative assumptions
        assert parse_atom("p(0,1)") not in atoms


class TestWhatOperator:
    def test_first_application_matches_example_9(self, example_forest):
        result = what_operator(example_forest, Interpretation.empty())
        # Ŵ_{P,1} contains the R-chain and P(0,0), plus the negations of atoms
        # with no forward proof (e.g. q(0) does not even occur in the forest).
        assert result.is_true(parse_atom("p(0,0)"))
        terms = skolem_chain(1)
        assert result.is_true(Atom("r", (Constant("0"), Constant("1"), terms[2])))
        # p(0,1) requires the negative hypothesis ¬q(1), not yet available
        assert not result.is_true(parse_atom("p(0,1)"))
        # q(1) does label a node (so ¬q(1) is not yet derivable at stage 1),
        # whereas q(0) labels no node and is immediately false — exactly the
        # shape of Ŵ_{P,1} described in Example 9.
        assert not result.is_false(parse_atom("q(1)"))
        extended = what_operator(
            example_forest, Interpretation.empty(), universe=[parse_atom("q(0)")]
        )
        assert extended.is_false(parse_atom("q(0)"))

    def test_fixpoint_reproduces_the_papers_model(self, example_forest):
        fixpoint = what_fixpoint(example_forest)
        assert fixpoint.is_true(parse_atom("t(0)"))
        assert fixpoint.is_false(parse_atom("s(0)"))
        assert fixpoint.is_true(parse_atom("p(0,1)"))
        assert fixpoint.is_false(parse_atom("q(1)"))

    def test_fixpoint_agrees_with_the_engine_model(self, paper_example_engine, example_forest):
        fixpoint = what_fixpoint(example_forest)
        model = paper_example_engine.model()
        for atom in (
            "p(0,0)",
            "p(0,1)",
            "q(1)",
            "s(0)",
            "t(0)",
        ):
            parsed = parse_atom(atom)
            assert fixpoint.is_true(parsed) == model.is_true(parsed)
            assert fixpoint.is_false(parsed) == model.is_false(parsed)
