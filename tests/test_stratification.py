"""Tests for stratification and the perfect-model semantics (:mod:`repro.lp.stratification`)."""

from __future__ import annotations

import pytest

from repro.exceptions import NotStratifiedError
from repro.lang.parser import parse_atom, parse_normal_program
from repro.lp.grounding import relevant_grounding
from repro.lp.stratification import (
    dependency_graph,
    is_stratified,
    perfect_model,
    stratify,
)
from repro.lp.wfs import well_founded_model


class TestDependencyGraphAndStratification:
    def test_dependency_graph_edges(self):
        program = parse_normal_program("q(X), not r(X) -> p(X). s(X) -> q(X).")
        positive, negative = dependency_graph(program)
        assert ("p", "q") in positive and ("q", "s") in positive
        assert ("p", "r") in negative

    def test_stratified_program_gets_increasing_strata(self):
        program = parse_normal_program(
            """
            bird(tweety).
            bird(X), not penguin(X) -> flies(X).
            flies(X) -> travels(X).
            """
        )
        strata = stratify(program)
        assert strata["flies"] >= strata["penguin"] + 1
        assert strata["travels"] >= strata["flies"]
        assert is_stratified(program)

    def test_negative_cycle_is_not_stratified(self):
        program = parse_normal_program("not q -> p. not p -> q.")
        assert not is_stratified(program)
        with pytest.raises(NotStratifiedError):
            stratify(program)

    def test_positive_cycle_is_stratified(self):
        program = parse_normal_program("q -> p. p -> q.")
        assert is_stratified(program)

    def test_negative_self_loop_is_not_stratified(self):
        assert not is_stratified(parse_normal_program("not p -> p."))


class TestPerfectModel:
    def test_flies_example(self):
        program = parse_normal_program(
            """
            bird(tweety). bird(sam). penguin(sam).
            bird(X), not penguin(X) -> flies(X).
            """
        )
        model = perfect_model(program)
        assert model.is_true(parse_atom("flies(tweety)"))
        assert model.is_false(parse_atom("flies(sam)"))
        assert not model.is_undefined(parse_atom("flies(sam)"))

    def test_multi_stratum_evaluation(self):
        program = parse_normal_program(
            """
            node(a). node(b). node(c). edge(a, b).
            edge(X, Y) -> reach(Y).
            node(X), not reach(X) -> isolated(X).
            isolated(X), not special(X) -> boring(X).
            """
        )
        model = perfect_model(program)
        assert model.is_true(parse_atom("reach(b)"))
        assert model.is_true(parse_atom("isolated(a)"))
        assert model.is_true(parse_atom("isolated(c)"))
        assert model.is_false(parse_atom("isolated(b)"))
        assert model.is_true(parse_atom("boring(c)"))

    def test_perfect_model_rejects_unstratified_programs(self):
        with pytest.raises(NotStratifiedError):
            perfect_model(parse_normal_program("not p -> p."))

    def test_wfs_coincides_with_perfect_model_on_stratified_programs(self):
        # One of the classical properties the paper relies on (Sec. 1): on
        # stratified programs the WFS is total and equals the perfect model.
        program = parse_normal_program(
            """
            employee(ann). employee(bob). manager(ann).
            employee(X), not manager(X) -> worker(X).
            worker(X), not onLeave(X) -> atDesk(X).
            """
        )
        ground = relevant_grounding(program)
        wfs = well_founded_model(ground)
        perfect = perfect_model(program, ground=ground)
        assert wfs.is_total()
        assert wfs.true_atoms() == perfect.true_atoms()
