"""Tests for the one-shot answering helpers (:mod:`repro.core.answering`)."""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_program, parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Variable
from repro.core.answering import (
    answer_query,
    certain_answers,
    clear_engine_cache,
    engine_cache_info,
    holds_under_wfs,
    invalidate_engine,
    shared_engine,
)
from repro.core.engine import WellFoundedEngine

LITERATURE = """
conferencePaper(X) -> article(X).
scientist(X) -> exists Y isAuthorOf(X, Y).
isAuthorOf(X, Y), not retracted(Y) -> hasValidPublication(X).
scientist(john).
conferencePaper(pods13).
"""


class TestHoldsUnderWfs:
    def test_example_1_query(self):
        assert holds_under_wfs(LITERATURE, None, "? isAuthorOf(john, Y)")

    def test_negative_query_atoms_use_well_founded_falsity(self):
        assert holds_under_wfs(LITERATURE, None, "? isAuthorOf(john, Y), not retracted(Y)")

    def test_ground_atom_queries(self):
        assert holds_under_wfs(LITERATURE, None, parse_atom("article(pods13)"))
        assert not holds_under_wfs(LITERATURE, None, parse_atom("article(john)"))

    def test_explicit_database_argument(self):
        program, _ = parse_program("scientist(X) -> exists Y isAuthorOf(X, Y).")
        assert holds_under_wfs(program, "scientist(ada).", "? isAuthorOf(ada, Y)")

    def test_engine_options_are_forwarded(self):
        # A tiny max_depth still suffices here because the chase terminates.
        assert holds_under_wfs(
            LITERATURE, None, "? article(pods13)", initial_depth=2, max_depth=4
        )


class TestAnswerQuery:
    def test_certain_answers_are_constant_tuples(self):
        answers = answer_query(LITERATURE, None, "? article(X)")
        assert answers == {(Constant("pods13"),)}

    def test_nulls_are_filtered_unless_requested(self):
        with_nulls = answer_query(
            LITERATURE, None, "? isAuthorOf(john, Y)", constants_only=False
        )
        without_nulls = answer_query(LITERATURE, None, "? isAuthorOf(john, Y)")
        assert without_nulls == set()
        assert len(with_nulls) == 1

    def test_answer_query_accepts_cq_objects(self):
        query = ConjunctiveQuery(
            (Atom("hasValidPublication", (Variable("X"),)),), (Variable("X"),)
        )
        answers = answer_query(LITERATURE, None, query)
        assert answers == {(Constant("john"),)}


class TestEngineCache:
    """The module-level LRU that keeps repeated one-shot calls cheap."""

    def setup_method(self):
        clear_engine_cache()

    def teardown_method(self):
        clear_engine_cache()

    def test_repeated_calls_share_one_engine(self):
        assert holds_under_wfs(LITERATURE, None, "? article(pods13)")
        assert holds_under_wfs(LITERATURE, None, "? isAuthorOf(john, Y)")
        info = engine_cache_info()
        assert info["size"] == 1
        assert info["hits"] == 1 and info["misses"] == 1

    def test_shared_engine_is_identical_object_for_same_inputs(self):
        first = shared_engine(LITERATURE, None)
        second = shared_engine(LITERATURE, None)
        assert first is second

    def test_program_objects_are_keyed_by_identity(self):
        program, database = parse_program(LITERATURE)
        first = shared_engine(program, database)
        assert shared_engine(program, database) is first
        # a structurally equal but distinct program gets its own engine
        other_program, other_database = parse_program(LITERATURE)
        assert shared_engine(other_program, other_database) is not first

    def test_different_engine_options_get_different_engines(self):
        first = shared_engine(LITERATURE, None, max_depth=9)
        second = shared_engine(LITERATURE, None, max_depth=11)
        assert first is not second
        assert engine_cache_info()["size"] == 2

    def test_unkeyable_inputs_bypass_the_cache(self):
        program, _ = parse_program("conferencePaper(X) -> article(X).")
        atoms = [parse_atom("conferencePaper(pods13)")]
        engine = shared_engine(program, atoms)  # plain list: not cacheable
        assert engine_cache_info()["size"] == 0
        assert engine.holds("? article(pods13)")

    def test_eviction_beyond_capacity(self):
        from repro.core import answering

        programs = [parse_program(LITERATURE)[0] for _ in range(answering.ENGINE_CACHE_SIZE + 2)]
        engines = [shared_engine(p, None) for p in programs]
        assert engine_cache_info()["size"] == answering.ENGINE_CACHE_SIZE
        # the oldest entries were evicted, the newest survive
        assert shared_engine(programs[-1], None) is engines[-1]

    def test_mutated_database_is_not_served_stale(self):
        program, _ = parse_program("conferencePaper(X) -> article(X).")
        from repro.lang.program import Database

        database = Database([parse_atom("conferencePaper(pods13)")])
        assert holds_under_wfs(program, database, "? article(pods13)")
        database.add(parse_atom("conferencePaper(icdt19)"))
        # the append changed len(database), so a fresh engine must be built
        assert holds_under_wfs(program, database, "? article(icdt19)")
        # ... and the superseded engine must have been purged, not left to
        # occupy an LRU slot its key can never hit again
        assert engine_cache_info()["size"] == 1

    def test_add_remove_round_trip_is_not_served_stale(self):
        """Removal returns the database to its old `len` — the version-keyed
        cache must still miss, never resurrecting the pre-mutation engine."""
        from repro.lang.program import Database

        program, _ = parse_program("conferencePaper(X) -> article(X).")
        database = Database([parse_atom("conferencePaper(pods13)")])
        assert holds_under_wfs(program, database, "? article(pods13)")
        database.add(parse_atom("conferencePaper(icdt19)"))
        database.remove(parse_atom("conferencePaper(icdt19)"))
        assert len(database) == 1  # same size as when the engine was cached
        assert not holds_under_wfs(program, database, "? article(icdt19)")
        assert engine_cache_info()["size"] == 1

    def test_invalidate_engine_drops_matching_entries(self):
        from repro.lang.program import Database

        program, _ = parse_program("conferencePaper(X) -> article(X).")
        database = Database([parse_atom("conferencePaper(pods13)")])
        other_program, _ = parse_program("scientist(X) -> person(X).")
        shared_engine(program, database)
        shared_engine(other_program, None)
        assert engine_cache_info()["size"] == 2
        assert invalidate_engine(database=database) == 1
        assert engine_cache_info()["size"] == 1
        assert invalidate_engine(program=other_program) == 1
        assert engine_cache_info()["size"] == 0
        assert invalidate_engine() == 0

    def test_stale_engines_are_detected_and_rebuilt_on_hit(self):
        """Mutating the engine's own database copy trips the is_stale guard.

        Text programs hold a private database copy, so the versioned cache
        key cannot observe the mutation — only the hit-path recheck can.
        """
        engine = shared_engine(LITERATURE, None)
        assert not engine.is_stale()
        engine.database.add(parse_atom("conferencePaper(vldb21)"))
        assert engine.is_stale()
        rebuilt = shared_engine(LITERATURE, None)
        assert rebuilt is not engine
        assert not rebuilt.is_stale()
        assert engine_cache_info()["size"] == 1

    def test_rewrite_option_is_forwarded(self):
        program, database = parse_program(LITERATURE)
        assert holds_under_wfs(program, database, "? article(pods13)", rewrite=True)
        engine = shared_engine(program, database)
        assert engine.last_query_stats["mode"] == "magic"


class TestCertainAnswers:
    def test_certain_answers_over_a_precomputed_model(self):
        engine = WellFoundedEngine(LITERATURE)
        query = ConjunctiveQuery((Atom("article", (Variable("X"),)),), (Variable("X"),))
        assert certain_answers(engine.model(), query) == {(Constant("pods13"),)}

    def test_null_answers_are_dropped(self):
        engine = WellFoundedEngine(LITERATURE)
        query = ConjunctiveQuery(
            (Atom("isAuthorOf", (Constant("john"), Variable("Y"))),), (Variable("Y"),)
        )
        assert certain_answers(engine.model(), query) == set()


class TestSharedEngineThreadSafety:
    """The satellite bugfix: version read, staleness recheck and eviction are
    atomic under the cache lock, and a served engine re-verifies freshness
    under its own lock (drop-and-retry on staleness).  Threads hammering
    ``holds_under_wfs`` against concurrent ``Database`` mutations must never
    crash, never observe a torn cache entry, and — once mutations quiesce
    between phases — always serve the *current* database state.
    """

    def _workload(self):
        from repro.lang.program import Database

        program, _ = parse_program("signal(X) -> seen(X).")
        database = Database([parse_atom("signal(s0)")])
        return program, database

    def test_phased_mutations_are_never_served_stale(self):
        import threading

        clear_engine_cache()
        program, database = self._workload()
        rounds = 12
        num_threads = 4
        barrier = threading.Barrier(num_threads + 1)
        failures: list[str] = []

        def worker():
            for expected_round in range(rounds):
                barrier.wait(timeout=20)  # mutation for this round is done
                fact = f"seen(r{expected_round})"
                try:
                    if not holds_under_wfs(program, database, f"? {fact}"):
                        failures.append(f"stale answer for {fact}")
                except Exception as error:  # pragma: no cover - the regression
                    failures.append(f"{type(error).__name__}: {error}")
                barrier.wait(timeout=20)  # everyone answered; next mutation may go

        threads = [threading.Thread(target=worker) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for round_index in range(rounds):
            database.add(parse_atom(f"signal(r{round_index})"))
            barrier.wait(timeout=20)
            barrier.wait(timeout=20)
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures

    def test_unphased_hammer_is_crash_free_and_ends_fresh(self):
        import threading

        clear_engine_cache()
        program, database = self._workload()
        stop = threading.Event()
        errors: list[str] = []

        def worker():
            while not stop.is_set():
                try:
                    # any boolean is fine mid-mutation; crashes are not
                    holds_under_wfs(program, database, "? seen(s0)")
                except Exception as error:  # pragma: no cover - the regression
                    errors.append(f"{type(error).__name__}: {error}")
                    return

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for i in range(60):
            database.add(parse_atom(f"signal(h{i})"))
            if i % 2:
                database.discard(parse_atom(f"signal(h{i - 1})"))
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        # after the dust settles the served model reflects the final state:
        # odd-indexed signals survive, even-indexed ones were discarded by
        # the following odd iteration
        assert holds_under_wfs(program, database, "? seen(h59)")
        assert not holds_under_wfs(program, database, "? seen(h58)")
