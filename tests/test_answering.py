"""Tests for the one-shot answering helpers (:mod:`repro.core.answering`)."""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom, parse_program, parse_query
from repro.lang.queries import ConjunctiveQuery
from repro.lang.terms import Constant, Variable
from repro.core.answering import answer_query, certain_answers, holds_under_wfs
from repro.core.engine import WellFoundedEngine

LITERATURE = """
conferencePaper(X) -> article(X).
scientist(X) -> exists Y isAuthorOf(X, Y).
isAuthorOf(X, Y), not retracted(Y) -> hasValidPublication(X).
scientist(john).
conferencePaper(pods13).
"""


class TestHoldsUnderWfs:
    def test_example_1_query(self):
        assert holds_under_wfs(LITERATURE, None, "? isAuthorOf(john, Y)")

    def test_negative_query_atoms_use_well_founded_falsity(self):
        assert holds_under_wfs(LITERATURE, None, "? isAuthorOf(john, Y), not retracted(Y)")

    def test_ground_atom_queries(self):
        assert holds_under_wfs(LITERATURE, None, parse_atom("article(pods13)"))
        assert not holds_under_wfs(LITERATURE, None, parse_atom("article(john)"))

    def test_explicit_database_argument(self):
        program, _ = parse_program("scientist(X) -> exists Y isAuthorOf(X, Y).")
        assert holds_under_wfs(program, "scientist(ada).", "? isAuthorOf(ada, Y)")

    def test_engine_options_are_forwarded(self):
        # A tiny max_depth still suffices here because the chase terminates.
        assert holds_under_wfs(
            LITERATURE, None, "? article(pods13)", initial_depth=2, max_depth=4
        )


class TestAnswerQuery:
    def test_certain_answers_are_constant_tuples(self):
        answers = answer_query(LITERATURE, None, "? article(X)")
        assert answers == {(Constant("pods13"),)}

    def test_nulls_are_filtered_unless_requested(self):
        with_nulls = answer_query(
            LITERATURE, None, "? isAuthorOf(john, Y)", constants_only=False
        )
        without_nulls = answer_query(LITERATURE, None, "? isAuthorOf(john, Y)")
        assert without_nulls == set()
        assert len(with_nulls) == 1

    def test_answer_query_accepts_cq_objects(self):
        query = ConjunctiveQuery(
            (Atom("hasValidPublication", (Variable("X"),)),), (Variable("X"),)
        )
        answers = answer_query(LITERATURE, None, query)
        assert answers == {(Constant("john"),)}


class TestCertainAnswers:
    def test_certain_answers_over_a_precomputed_model(self):
        engine = WellFoundedEngine(LITERATURE)
        query = ConjunctiveQuery((Atom("article", (Variable("X"),)),), (Variable("X"),))
        assert certain_answers(engine.model(), query) == {(Constant("pods13"),)}

    def test_null_answers_are_dropped(self):
        engine = WellFoundedEngine(LITERATURE)
        query = ConjunctiveQuery(
            (Atom("isAuthorOf", (Constant("john"), Variable("Y"))),), (Variable("Y"),)
        )
        assert certain_answers(engine.model(), query) == set()
