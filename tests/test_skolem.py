"""Unit tests for the functional transformation (:mod:`repro.lang.skolem`)."""

from __future__ import annotations

from repro.lang.atoms import Atom
from repro.lang.parser import parse_ntgd, parse_program
from repro.lang.rules import NTGD
from repro.lang.skolem import skolem_function_name, skolemize_ntgd, skolemize_program
from repro.lang.terms import Constant, FunctionTerm, Variable

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestSkolemizeNTGD:
    def test_rule_without_existentials_is_unchanged_up_to_class(self):
        ntgd = parse_ntgd("conferencePaper(X) -> article(X).")
        rule = skolemize_ntgd(ntgd, "r0")
        assert rule.head == ntgd.head
        assert rule.body_pos == ntgd.body_pos

    def test_existential_becomes_skolem_term_over_universal_variables(self):
        ntgd = parse_ntgd("r(X,Y,Z) -> exists W r(X,Z,W).")
        rule = skolemize_ntgd(ntgd, "growth")
        expected_function = skolem_function_name("growth", W)
        assert rule.head == Atom(
            "r", (X, Z, FunctionTerm(expected_function, (X, Y, Z)))
        )

    def test_skolem_arguments_follow_body_order(self):
        # The paper's Example 4 uses f(X, Y, Z): all universally quantified
        # variables in their body order, even if some do not occur in the head.
        ntgd = parse_ntgd("r(X,Y,Z) -> exists W s(Z,W).")
        rule = skolemize_ntgd(ntgd, "r")
        skolem = rule.head.args[1]
        assert isinstance(skolem, FunctionTerm)
        assert skolem.args == (X, Y, Z)

    def test_frontier_mode_uses_only_shared_variables(self):
        ntgd = parse_ntgd("r(X,Y,Z) -> exists W s(Z,W).")
        rule = skolemize_ntgd(ntgd, "r", skolem_args="frontier")
        skolem = rule.head.args[1]
        assert skolem.args == (Z,)

    def test_negative_body_is_preserved(self):
        ntgd = parse_ntgd("r(X,Y), not q(X) -> exists Z s(X,Z).")
        rule = skolemize_ntgd(ntgd, "r")
        assert rule.body_neg == (Atom("q", (X,)),)

    def test_multiple_existentials_get_distinct_functions(self):
        ntgd = parse_ntgd("p(X) -> exists Y, Z r(X, Y, Z).")
        rule = skolemize_ntgd(ntgd, "multi")
        first, second = rule.head.args[1], rule.head.args[2]
        assert isinstance(first, FunctionTerm) and isinstance(second, FunctionTerm)
        assert first.function != second.function

    def test_deterministic_naming(self):
        ntgd = parse_ntgd("p(X) -> exists Y r(X, Y).")
        assert skolemize_ntgd(ntgd, "k") == skolemize_ntgd(ntgd, "k")


class TestSkolemizeProgram:
    def test_positions_are_used_as_rule_identifiers(self):
        program, _ = parse_program(
            """
            p(X) -> exists Y r(X, Y).
            q(X) -> exists Y r(X, Y).
            """
        )
        skolemized = skolemize_program(program)
        functions = {
            arg.function
            for rule in skolemized
            for arg in rule.head.args
            if isinstance(arg, FunctionTerm)
        }
        assert len(functions) == 2  # the two rules get distinct Skolem functions

    def test_labels_override_positions(self):
        ntgd = NTGD((Atom("p", (X,)),), Atom("r", (X, Y)), label="named")
        skolemized = skolemize_program([ntgd])
        function = list(skolemized)[0].head.args[1].function
        assert "named" in function

    def test_functional_transformation_of_positive_program_is_positive(self):
        program, _ = parse_program(
            """
            p(X) -> exists Y r(X, Y).
            r(X, Y) -> s(X).
            """
        )
        assert skolemize_program(program).is_positive()

    def test_skolemized_program_keeps_negation(self):
        program, _ = parse_program("p(X), not q(X) -> exists Y r(X, Y).")
        assert not skolemize_program(program).is_positive()
