"""Tests for atom types and X-isomorphisms (:mod:`repro.chase.types`)."""

from __future__ import annotations

import pytest

from repro.lang.atoms import Atom, neg, pos
from repro.lang.terms import Constant, FunctionTerm
from repro.chase.types import (
    AtomType,
    are_x_isomorphic,
    canonical_type_key,
    max_type_count,
    shape_key,
    x_isomorphism,
)

a, b = Constant("a"), Constant("b")
n1, n2, n3 = (FunctionTerm(f"null{i}", ()) for i in (1, 2, 3))


class TestShapeKeys:
    def test_same_shape_up_to_null_renaming(self):
        assert shape_key(Atom("p", (a, n1))) == shape_key(Atom("p", (a, n2)))

    def test_constants_are_not_renamed(self):
        assert shape_key(Atom("p", (a,))) != shape_key(Atom("p", (b,)))

    def test_repeated_nulls_are_distinguished_from_distinct_ones(self):
        assert shape_key(Atom("p", (n1, n1))) != shape_key(Atom("p", (n1, n2)))

    def test_predicate_matters(self):
        assert shape_key(Atom("p", (n1,))) != shape_key(Atom("q", (n1,)))


class TestAtomTypes:
    def test_type_selects_literals_over_the_atom_domain(self):
        literals = [
            pos(Atom("p", (a, n1))),
            neg(Atom("q", (n1,))),
            pos(Atom("r", (n2,))),  # outside dom(p(a, n1))
        ]
        atom_type = AtomType.of(Atom("p", (a, n1)), literals)
        assert pos(Atom("p", (a, n1))) in atom_type.literals
        assert neg(Atom("q", (n1,))) in atom_type.literals
        assert pos(Atom("r", (n2,))) not in atom_type.literals

    def test_isomorphic_types_have_equal_keys(self):
        left = AtomType.of(Atom("p", (a, n1)), [pos(Atom("p", (a, n1))), neg(Atom("q", (n1,)))])
        right = AtomType.of(Atom("p", (a, n2)), [pos(Atom("p", (a, n2))), neg(Atom("q", (n2,)))])
        assert left.key() == right.key()
        assert left.is_isomorphic_to(right)

    def test_non_isomorphic_types_differ(self):
        left = AtomType.of(Atom("p", (a, n1)), [pos(Atom("p", (a, n1)))])
        right = AtomType.of(Atom("p", (a, n2)), [pos(Atom("p", (a, n2))), neg(Atom("q", (n2,)))])
        assert left.key() != right.key()

    def test_canonical_type_key_is_order_insensitive(self):
        literals = [pos(Atom("p", (n1,))), neg(Atom("q", (n1,)))]
        assert canonical_type_key(Atom("p", (n1,)), literals) == canonical_type_key(
            Atom("p", (n1,)), list(reversed(literals))
        )


class TestXIsomorphism:
    def test_isomorphism_renames_nulls(self):
        left = {pos(Atom("p", (a, n1))), pos(Atom("q", (n1,)))}
        right = {pos(Atom("p", (a, n2))), pos(Atom("q", (n2,)))}
        mapping = x_isomorphism(left, right)
        assert mapping is not None
        assert mapping[n1] == n2
        assert mapping[a] == a
        assert are_x_isomorphic(left, right)

    def test_fixed_terms_must_be_preserved(self):
        left = {pos(Atom("p", (n1,)))}
        right = {pos(Atom("p", (n2,)))}
        assert are_x_isomorphic(left, right)
        assert not are_x_isomorphic(left, right, fixed=[n1])

    def test_mismatched_structures_are_not_isomorphic(self):
        left = {pos(Atom("p", (n1, n1)))}
        right = {pos(Atom("p", (n1, n2)))}
        assert not are_x_isomorphic(left, right)

    def test_different_domain_sizes_are_not_isomorphic(self):
        left = {pos(Atom("p", (n1,)))}
        right = {pos(Atom("p", (n1,))), pos(Atom("p", (n2,)))}
        assert not are_x_isomorphic(left, right)

    def test_search_domain_guard(self):
        left = {pos(Atom("p", tuple(FunctionTerm(f"x{i}", ()) for i in range(15))))}
        right = {pos(Atom("p", tuple(FunctionTerm(f"y{i}", ()) for i in range(15))))}
        with pytest.raises(ValueError):
            x_isomorphism(left, right)


class TestTypeCounting:
    def test_bound_grows_with_schema(self):
        assert max_type_count(1, 1) < max_type_count(2, 1) < max_type_count(2, 2)

    def test_propositional_corner_case(self):
        assert max_type_count(3, 0) == 3 * 2**3

    def test_bound_is_positive(self):
        assert max_type_count(1, 1) > 0
