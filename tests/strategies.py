"""Shared hypothesis strategies for the test-suite.

Lives in a plain helper module (pytest puts the ``tests/`` directory on
``sys.path``) so every test file can import the strategies without relative
imports — ``tests`` is intentionally not a package.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.lang.atoms import Atom
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant, FunctionTerm, Variable
from repro.lp.grounding import GroundProgram

__all__ = [
    "constants",
    "variables",
    "terms",
    "ground_terms",
    "atoms",
    "ground_atoms",
    "prop_atoms",
    "ground_programs",
    "agenda_orderings",
]

constants = st.sampled_from([Constant(name) for name in "abcde"])
variables = st.sampled_from([Variable(name) for name in ("X", "Y", "Z")])


def terms(max_depth=2):
    return st.recursive(
        constants | variables,
        lambda children: st.builds(
            FunctionTerm,
            st.sampled_from(["f", "g"]),
            st.lists(children, min_size=1, max_size=2).map(tuple),
        ),
        max_leaves=4,
    )


ground_terms = st.recursive(
    constants,
    lambda children: st.builds(
        FunctionTerm,
        st.sampled_from(["f", "g"]),
        st.lists(children, min_size=1, max_size=2).map(tuple),
    ),
    max_leaves=4,
)

atoms = st.builds(
    Atom,
    st.sampled_from(["p", "q", "r"]),
    st.lists(terms(), min_size=0, max_size=2).map(tuple),
)

ground_atoms = st.builds(
    Atom,
    st.sampled_from(["p", "q", "r"]),
    st.lists(ground_terms, min_size=0, max_size=2).map(tuple),
)

#: Propositional atoms used to build random ground normal programs.
prop_atoms = st.sampled_from([Atom(name, ()) for name in "abcdefg"])


@st.composite
def ground_programs(draw):
    """Random small ground (propositional) normal programs."""
    num_rules = draw(st.integers(min_value=1, max_value=8))
    rules = []
    for _ in range(num_rules):
        head = draw(prop_atoms)
        body_pos = tuple(draw(st.lists(prop_atoms, max_size=2)))
        body_neg = tuple(draw(st.lists(prop_atoms, max_size=2)))
        rules.append(NormalRule(head, body_pos, body_neg))
    num_facts = draw(st.integers(min_value=0, max_value=3))
    for _ in range(num_facts):
        rules.append(NormalRule(draw(prop_atoms)))
    return GroundProgram(rules)


@st.composite
def agenda_orderings(draw):
    """A random agenda-scheduling policy for the chase engine.

    Draws a seed and returns a zero-argument factory producing a fresh
    ``agenda_order`` callable (``queue length -> index to pop``) driven by a
    seeded PRNG — a fresh callable per engine, so two engines given the same
    factory replay the same permutation and a test can still vary the order
    across examples.  ``None`` (the engine's default LIFO policy) is drawn as
    a degenerate case.
    """
    seed = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**16)))
    if seed is None:
        return lambda: None

    def factory():
        rng = random.Random(seed)
        return lambda queue_length: rng.randrange(queue_length)

    return factory
