"""Shared hypothesis strategies for the test-suite.

Lives in a plain helper module (pytest puts the ``tests/`` directory on
``sys.path``) so every test file can import the strategies without relative
imports — ``tests`` is intentionally not a package.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.bench.generators import random_guarded_program
from repro.lang.atoms import Atom
from repro.lang.program import NormalProgram
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant, FunctionTerm, Variable
from repro.lp.grounding import GroundProgram

__all__ = [
    "constants",
    "variables",
    "terms",
    "ground_terms",
    "atoms",
    "ground_atoms",
    "prop_atoms",
    "ground_programs",
    "safe_normal_workloads",
    "guarded_workloads",
    "agenda_orderings",
    "scenario_bundles",
    "scenario_traces",
]

constants = st.sampled_from([Constant(name) for name in "abcde"])
variables = st.sampled_from([Variable(name) for name in ("X", "Y", "Z")])


def terms(max_depth=2):
    return st.recursive(
        constants | variables,
        lambda children: st.builds(
            FunctionTerm,
            st.sampled_from(["f", "g"]),
            st.lists(children, min_size=1, max_size=2).map(tuple),
        ),
        max_leaves=4,
    )


ground_terms = st.recursive(
    constants,
    lambda children: st.builds(
        FunctionTerm,
        st.sampled_from(["f", "g"]),
        st.lists(children, min_size=1, max_size=2).map(tuple),
    ),
    max_leaves=4,
)

atoms = st.builds(
    Atom,
    st.sampled_from(["p", "q", "r"]),
    st.lists(terms(), min_size=0, max_size=2).map(tuple),
)

ground_atoms = st.builds(
    Atom,
    st.sampled_from(["p", "q", "r"]),
    st.lists(ground_terms, min_size=0, max_size=2).map(tuple),
)

#: Propositional atoms used to build random ground normal programs.
prop_atoms = st.sampled_from([Atom(name, ()) for name in "abcdefg"])


@st.composite
def ground_programs(draw):
    """Random small ground (propositional) normal programs."""
    num_rules = draw(st.integers(min_value=1, max_value=8))
    rules = []
    for _ in range(num_rules):
        head = draw(prop_atoms)
        body_pos = tuple(draw(st.lists(prop_atoms, max_size=2)))
        body_neg = tuple(draw(st.lists(prop_atoms, max_size=2)))
        rules.append(NormalRule(head, body_pos, body_neg))
    num_facts = draw(st.integers(min_value=0, max_value=3))
    for _ in range(num_facts):
        rules.append(NormalRule(draw(prop_atoms)))
    return GroundProgram(rules)


#: Small predicate space shared by the grounder-level differential tests.
_WORKLOAD_PREDICATES = [("p", 1), ("q", 2), ("r", 1), ("e", 2)]


@st.composite
def safe_normal_workloads(draw):
    """A random small *safe* non-ground normal program plus a ground EDB.

    Heads only use variables bound in the positive body (or constants, or a
    function term over those), negative bodies likewise — the safety regime
    every grounding backend must handle; the EDB is returned separately so it
    can be fed to a grounder as ``extra_atoms``.  Function-term heads are
    restricted to single-atom bodies: with a wider body the tuple oracle can
    observe its own emissions while still enumerating the same rule pass and
    derive an unbounded function-symbol chain *within one round*, where no
    ``max_rounds`` budget can interrupt it.
    """
    rules = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        body_pos = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            name, arity = draw(st.sampled_from(_WORKLOAD_PREDICATES))
            args = tuple(draw(constants | variables) for _ in range(arity))
            body_pos.append(Atom(name, args))
        bound = sorted(
            {t for atom in body_pos for t in atom.args if isinstance(t, Variable)},
            key=str,
        )
        safe_terms = st.sampled_from([Constant(n) for n in "abcde"] + bound)
        head_terms = safe_terms
        if len(body_pos) == 1:
            head_terms = safe_terms | st.builds(
                FunctionTerm,
                st.sampled_from(["f", "g"]),
                st.lists(safe_terms, min_size=1, max_size=2).map(tuple),
            )
        name, arity = draw(st.sampled_from(_WORKLOAD_PREDICATES))
        head = Atom(name, tuple(draw(head_terms) for _ in range(arity)))
        body_neg = []
        if draw(st.booleans()):
            name, arity = draw(st.sampled_from(_WORKLOAD_PREDICATES))
            body_neg.append(Atom(name, tuple(draw(safe_terms) for _ in range(arity))))
        rules.append(NormalRule(head, tuple(body_pos), tuple(body_neg)))
    edb = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        name, arity = draw(st.sampled_from(_WORKLOAD_PREDICATES))
        edb.append(Atom(name, tuple(draw(ground_terms) for _ in range(arity))))
    return NormalProgram(rules), edb


@st.composite
def guarded_workloads(draw):
    """A random guarded Datalog± workload (program + database).

    Shared by the incremental-engine and columnar-backend property suites:
    the engine observables must be invariant under every (schedule ×
    configuration) combination, so the same workload space exercises both.
    """
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_predicates = draw(st.integers(min_value=1, max_value=3))
    num_rules = draw(st.integers(min_value=2, max_value=5))
    negation_prob = draw(st.sampled_from([0.0, 0.4, 0.8]))
    existential_prob = draw(st.sampled_from([0.0, 0.4, 0.8]))
    return random_guarded_program(
        num_predicates,
        2,
        num_rules,
        negation_prob=negation_prob,
        existential_prob=existential_prob,
        num_constants=3,
        num_facts=8,
        seed=seed,
    )


#: Per-scenario size overrides keeping property examples fast (the registry
#: defaults target the CLI/bench; hypothesis runs hundreds of examples).
_SCENARIO_PROPERTY_SIZES = {
    "telemetry-rca": {"size": 6},
    "access-control": {"size": 4},
    "win-move": {"size": 6},
    "lubm-university": {"size": 1, "students": 2},
    "supply-chain": {"size": 6},
}


@st.composite
def scenario_bundles(draw, names=None):
    """A small instance of a registered scenario (random name × seed)."""
    from repro.scenarios import build_scenario, scenario_names

    name = draw(st.sampled_from(list(names) if names else scenario_names()))
    seed = draw(st.integers(min_value=0, max_value=1_000))
    overrides = dict(_SCENARIO_PROPERTY_SIZES.get(name, {}))
    overrides["seed"] = seed
    overrides["trace_length"] = draw(st.integers(min_value=4, max_value=24))
    overrides["checkpoint_every"] = draw(st.sampled_from([3, 5, 8]))
    return build_scenario(name, **overrides)


@st.composite
def scenario_traces(draw, names=None):
    """A scenario bundle plus a *fresh* random interleaving over its fact pool.

    The returned trace is regenerated from the bundle's dynamic-fact pool and
    query mix with an independent seed — so the property suites exercise
    interleavings the registry never shipped, not just the bundled trace.
    """
    bundle = draw(scenario_bundles(names))
    trace = bundle.regenerate_trace(
        seed=draw(st.integers(min_value=0, max_value=1_000)),
        length=draw(st.integers(min_value=4, max_value=24)),
        query_ratio=draw(st.sampled_from([0.0, 0.3, 0.6])),
        checkpoint_every=draw(st.sampled_from([3, 5])),
    )
    return bundle, trace


@st.composite
def agenda_orderings(draw):
    """A random agenda-scheduling policy for the chase engine.

    Draws a seed and returns a zero-argument factory producing a fresh
    ``agenda_order`` callable (``queue length -> index to pop``) driven by a
    seeded PRNG — a fresh callable per engine, so two engines given the same
    factory replay the same permutation and a test can still vary the order
    across examples.  ``None`` (the engine's default LIFO policy) is drawn as
    a degenerate case.
    """
    seed = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**16)))
    if seed is None:
        return lambda: None

    def factory():
        rng = random.Random(seed)
        return lambda queue_length: rng.randrange(queue_length)

    return factory
