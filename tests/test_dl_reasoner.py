"""End-to-end ontology reasoning tests (:mod:`repro.dl.reasoner`), replaying
the paper's Example 2 argument for the standard WFS under the UNA."""

from __future__ import annotations

import pytest

from repro.exceptions import NotStratifiedError
from repro.dl.syntax import Ontology
from repro.dl.reasoner import OntologyReasoner
from repro.bench.generators import employment_ontology, university_ontology


def example2_ontology():
    ontology = Ontology()
    ontology.subclass(["Person", "Employed", ("not", "exists JobSeekerID")],
                      "exists EmployeeID")
    ontology.subclass(["Person", ("not", "Employed"), ("not", "exists EmployeeID")],
                      "exists JobSeekerID")
    ontology.subclass(["exists EmployeeID-", ("not", "exists JobSeekerID-")], "ValidID")
    ontology.abox.assert_concept("Person", "a")
    ontology.abox.assert_concept("Person", "b")
    ontology.abox.assert_concept("Employed", "a")
    return ontology


class TestExample2:
    @pytest.fixture(scope="class")
    def reasoner(self):
        return OntologyReasoner(example2_ontology())

    def test_employed_person_gets_an_employee_id(self, reasoner):
        assert reasoner.has_role_successor("EmployeeID", "a")

    def test_unemployed_person_gets_a_job_seeker_id(self, reasoner):
        assert reasoner.has_role_successor("JobSeekerID", "b")

    def test_cross_derivations_do_not_happen(self, reasoner):
        assert not reasoner.has_role_successor("EmployeeID", "b")
        assert not reasoner.has_role_successor("JobSeekerID", "a")

    def test_una_makes_the_employee_id_valid(self, reasoner):
        # The paper's key point: under the UNA the Skolem null for a's employee
        # ID differs from the null for b's job-seeker ID, so ValidID is derived
        # for a's ID — which the equality-friendly WFS cannot conclude.
        assert reasoner.holds("? employeeID(a, V), validID(V)")

    def test_model_is_total_here(self, reasoner):
        assert reasoner.model().undefined_atoms() == frozenset()

    def test_concept_membership_api(self, reasoner):
        assert reasoner.instance_of("Person", "a")
        assert reasoner.concept_members("Employed") == {"a"}

    def test_example_2_is_beyond_stratified_datalog_pm(self, reasoner):
        # The two ID-assignment axioms negate each other's existential (an
        # employee ID blocks a job-seeker ID and vice versa), so the predicate
        # dependency graph has a cycle through negation: the stratified
        # semantics of [1] does not apply, while the WFS handles it — exactly
        # the gap the paper sets out to close.
        with pytest.raises(NotStratifiedError):
            reasoner.stratified_baseline()

    def test_a_stratified_ontology_agrees_with_its_stratified_baseline(self):
        stratified = Ontology()
        stratified.subclass("Professor", "exists WorksFor")
        stratified.subclass("exists Advises-", "Advised")
        stratified.subclass(["Student", ("not", "Advised")], "exists NeedsAdvisor")
        stratified.abox.assert_concept("Student", "sam")
        stratified.abox.assert_concept("Professor", "ada")
        reasoner = OntologyReasoner(stratified)
        baseline = reasoner.stratified_baseline()
        for query in ("? needsAdvisor(sam, V)", "? worksFor(ada, V)", "? advised(sam)"):
            assert reasoner.holds(query) == baseline.holds(query), query


class TestNonStratifiedOntology:
    def test_wfs_handles_a_cycle_through_negation_that_stratification_rejects(self):
        # Anyone not known to be covered gets an insurance contract; holders of
        # an insurance contract are covered.  The dependency graph has a cycle
        # through negation, so the stratified semantics of [1] rejects it; the
        # WFS still assigns a (total, in this case) model.
        ontology = Ontology()
        ontology.subclass(["Person", ("not", "Covered")], "exists InsuredBy")
        ontology.subclass("exists InsuredBy", "Covered")
        ontology.abox.assert_concept("Person", "alice")
        ontology.abox.assert_role("InsuredBy", "bob", "acme")

        reasoner = OntologyReasoner(ontology)
        with pytest.raises(NotStratifiedError):
            reasoner.stratified_baseline()

        assert reasoner.instance_of("Covered", "bob")
        # alice's status is genuinely self-referential: the WFS leaves it undefined
        model = reasoner.model()
        from repro.lang.atoms import Atom
        from repro.lang.terms import Constant

        assert model.is_undefined(Atom("covered", (Constant("alice"),)))


class TestGeneratedOntologies:
    def test_employment_workload_scales_and_stays_consistent(self):
        reasoner = OntologyReasoner(employment_ontology(12, seed=7))
        model = reasoner.model()
        assert model.converged
        employed = reasoner.concept_members("Employed")
        for person in employed:
            assert reasoner.has_role_successor("EmployeeID", person)

    def test_persons_with_asserted_jobseeker_ids_do_not_get_employee_ids(self):
        reasoner = OntologyReasoner(
            employment_ontology(30, employed_fraction=0.0, registered_fraction=1.0, seed=3)
        )
        for person in reasoner.concept_members("Person"):
            assert not reasoner.has_role_successor("EmployeeID", person)

    def test_university_ontology_reasoning(self):
        reasoner = OntologyReasoner(university_ontology(2, 3, advised_fraction=0.0, seed=1))
        # no student has an advisor, so every student needs one
        assert reasoner.holds("? student(X), needsAdvisor(X, V)")
        # professors are employees via exists WorksFor ⊑ Employee
        assert reasoner.instance_of("Employee", "prof0")
        # role inclusion advises ⊑ mentors has no instances here
        assert not reasoner.holds("? mentors(X, Y)")

    def test_university_ontology_with_advisors(self):
        reasoner = OntologyReasoner(university_ontology(1, 4, advised_fraction=1.0, seed=1))
        assert reasoner.holds("? mentors(prof0, X)")
        assert reasoner.instance_of("Advised", "student0_0")
        assert not reasoner.holds("? needsAdvisor(student0_0, V)")
