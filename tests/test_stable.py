"""Tests for the stable-model facility (:mod:`repro.lp.stable`) and the
classical relationship between the WFS and stable models."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_atom, parse_normal_program
from repro.lp.grounding import relevant_grounding
from repro.lp.stable import is_stable_model, stable_models
from repro.lp.wfs import well_founded_model


def ground(text):
    return relevant_grounding(parse_normal_program(text))


class TestStableModels:
    def test_definite_program_has_its_least_model_as_only_stable_model(self):
        program = ground("p. p -> q.")
        models = list(stable_models(program))
        assert models == [{parse_atom("p"), parse_atom("q")}]

    def test_even_negative_loop_has_two_stable_models(self):
        program = ground("not q -> p. not p -> q.")
        models = {frozenset(m) for m in stable_models(program)}
        assert models == {
            frozenset({parse_atom("p")}),
            frozenset({parse_atom("q")}),
        }

    def test_odd_negative_loop_has_no_stable_model(self):
        program = ground("not p -> p.")
        assert list(stable_models(program)) == []

    def test_is_stable_model_checks_the_reduct_fixpoint(self):
        program = ground("not q -> p. not p -> q.")
        assert is_stable_model(program, {parse_atom("p")})
        assert not is_stable_model(program, {parse_atom("p"), parse_atom("q")})
        assert not is_stable_model(program, set())

    def test_pruned_and_unpruned_enumeration_agree(self):
        program = ground("not q -> p. not p -> q. p -> r.")
        pruned = {frozenset(m) for m in stable_models(program)}
        unpruned = {frozenset(m) for m in stable_models(program, use_wfs_pruning=False)}
        assert pruned == unpruned

    def test_guess_budget_is_enforced(self):
        text = "\n".join(f"not a{i} -> b{i}. not b{i} -> a{i}." for i in range(30))
        program = ground(text)
        with pytest.raises(ValueError):
            list(stable_models(program, max_undefined=10))


class TestWfsApproximatesStableModels:
    @pytest.mark.parametrize(
        "text",
        [
            "p. p, not q -> r.",
            "not q -> p. not p -> q. p -> r.",
            """
            move(a, b). move(b, a). move(b, c). move(c, d).
            move(X, Y), not win(Y) -> win(X).
            """,
            "bird(tweety). bird(X), not penguin(X) -> flies(X).",
        ],
    )
    def test_wfs_literals_hold_in_every_stable_model(self, text):
        program = ground(text)
        wfs = well_founded_model(program)
        models = list(stable_models(program))
        for model in models:
            for atom in wfs.true_atoms():
                assert atom in model
            for atom in wfs.false_atoms():
                assert atom not in model

    def test_total_wfs_is_the_unique_stable_model(self):
        program = ground("bird(tweety). bird(X), not penguin(X) -> flies(X).")
        wfs = well_founded_model(program)
        assert wfs.is_total()
        assert list(stable_models(program)) == [set(wfs.true_atoms())]
