"""Cross-module integration tests: full pipelines from program text or
ontologies through the chase, the WFS engine, WCHECK and query answering."""

from __future__ import annotations

import pytest

from repro import WellFoundedEngine, parse_atom
from repro.core import StratifiedDatalogPM, holds_under_wfs, wcheck_atom, what_fixpoint
from repro.dl import Ontology, OntologyReasoner
from repro.lp.grounding import relevant_grounding
from repro.lp.wfs import well_founded_model
from repro.bench.generators import (
    employment_workload,
    win_move_datalog_pm,
    win_move_game,
)


class TestThreeComputationsAgree:
    """Ground-program WFS, Ŵ_P fixpoint and WCHECK must tell the same story."""

    def test_on_the_paper_example(self, paper_example_engine):
        model = paper_example_engine.model()
        forest = paper_example_engine.chase_forest()
        what = what_fixpoint(forest)
        for atom in model.segment_atoms():
            assert model.is_true(atom) == what.is_true(atom), atom
            assert model.is_true(atom) == wcheck_atom(model, atom), atom

    def test_on_the_employment_workload(self):
        program, database = employment_workload(15, seed=21)
        engine = WellFoundedEngine(program, database)
        model = engine.model()
        forest = engine.chase_forest()
        what = what_fixpoint(forest)
        for atom in model.segment_atoms():
            assert model.is_true(atom) == what.is_true(atom), atom
            assert model.is_true(atom) == wcheck_atom(model, atom), atom


class TestDatalogPMGeneralisesLP:
    def test_win_move_truth_values_match_for_several_graphs(self):
        for seed in (3, 8, 13):
            lp_model = well_founded_model(
                relevant_grounding(win_move_game(18, seed=seed))
            )
            program, database = win_move_datalog_pm(18, seed=seed)
            dpm_model = WellFoundedEngine(program, database).model()
            for atom in lp_model.universe():
                if atom.predicate != "win":
                    continue
                assert lp_model.is_true(atom) == dpm_model.is_true(atom)
                assert lp_model.is_false(atom) == dpm_model.is_false(atom)
                assert lp_model.is_undefined(atom) == dpm_model.is_undefined(atom)


class TestOntologyPipeline:
    def test_literature_ontology_end_to_end(self):
        # Example 1 of the paper, stated as an ontology, queried as a BCQ.
        ontology = Ontology()
        ontology.subclass("ConferencePaper", "Article")
        ontology.subclass("Scientist", "exists IsAuthorOf")
        ontology.abox.assert_concept("Scientist", "john")
        ontology.abox.assert_concept("ConferencePaper", "pods13")

        reasoner = OntologyReasoner(ontology)
        assert reasoner.holds("? isAuthorOf(john, Y)")
        assert reasoner.instance_of("Article", "pods13")
        assert not reasoner.instance_of("Article", "john")

        # the same conclusion is reachable through the one-shot helper
        assert holds_under_wfs(reasoner.program, reasoner.database, "? isAuthorOf(john, Y)")

    def test_wfs_and_stratified_baseline_disagree_only_beyond_stratification(self):
        text = """
        person(X), not covered(X) -> exists Y insuredBy(X, Y).
        insuredBy(X, Y) -> covered(X).
        person(alice).
        """
        engine = WellFoundedEngine(text)
        assert engine.model().is_undefined(parse_atom("covered(alice)"))
        with pytest.raises(Exception):
            StratifiedDatalogPM(text)


class TestRobustnessScenarios:
    def test_empty_database_yields_an_empty_model(self):
        engine = WellFoundedEngine("p(X) -> exists Y q(X, Y).")
        model = engine.model()
        assert model.converged
        assert model.true_atoms() == frozenset()

    def test_database_only_no_rules(self):
        engine = WellFoundedEngine("p(a). q(a, b).")
        model = engine.model()
        assert model.is_true(parse_atom("p(a)"))
        assert model.is_false(parse_atom("p(b)"))

    def test_large_fact_base_with_terminating_chase(self):
        facts = "\n".join(f"conferencePaper(paper{i})." for i in range(200))
        engine = WellFoundedEngine("conferencePaper(X) -> article(X).\n" + facts)
        model = engine.model()
        assert model.converged
        assert model.is_true(parse_atom("article(paper42)"))
        assert len([a for a in model.true_atoms() if a.predicate == "article"]) == 200

    def test_queries_mixing_constants_variables_and_negation(self):
        engine = WellFoundedEngine(
            """
            employee(X), not manager(X) -> exists Y reportsTo(X, Y).
            reportsTo(X, Y), not external(X) -> internal(X).
            employee(ann). employee(bob). manager(bob). external(eve). employee(eve).
            """
        )
        assert engine.holds("? reportsTo(ann, Y), not manager(ann)")
        assert engine.holds("? internal(ann)")
        assert not engine.holds("? internal(eve)")
        assert not engine.holds("? internal(bob)")
