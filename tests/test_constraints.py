"""Tests for negative constraints and EGDs (:mod:`repro.core.constraints`),
the extension the paper's conclusion lists as future work."""

from __future__ import annotations

import pytest

from repro.exceptions import IllFormedRuleError
from repro.lang.atoms import Atom
from repro.lang.parser import parse_atom
from repro.lang.terms import Constant, Variable
from repro.core.constraints import (
    EGD,
    ConstraintViolation,
    NegativeConstraint,
    check_constraints,
    is_consistent,
)
from repro.core.engine import WellFoundedEngine

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

EMPLOYMENT = """
person(X), employed(X), not hasJobSeekerId(X) -> exists Y employeeId(X, Y).
jobSeekerId(X, Y) -> hasJobSeekerId(X).
person(a). person(b). employed(a). employed(b).
jobSeekerId(b, id7).
"""


def employment_engine() -> WellFoundedEngine:
    return WellFoundedEngine(EMPLOYMENT)


class TestNegativeConstraints:
    def test_satisfied_constraint_reports_no_violation(self):
        engine = employment_engine()
        # nobody both holds a job-seeker ID and an employee ID
        constraint = NegativeConstraint(
            (Atom("employeeId", (X, Y)), Atom("jobSeekerId", (X, Z))), ()
        )
        assert check_constraints(engine, [constraint]) == []
        assert is_consistent(engine, [constraint])

    def test_violated_constraint_reports_a_witness(self):
        engine = employment_engine()
        # "no employed person may have a job-seeker ID" is violated by b
        constraint = NegativeConstraint(
            (Atom("employed", (X,)), Atom("jobSeekerId", (X, Y))), ()
        )
        violations = check_constraints(engine, [constraint])
        assert len(violations) == 1
        violation = violations[0]
        assert violation.hard
        assert violation.witness[X] == Constant("b")
        assert not is_consistent(engine, [constraint])

    def test_negated_body_atoms_use_well_founded_falsity(self):
        engine = employment_engine()
        # "every person must be employed" phrased as a constraint with negation:
        # person(X), not employed(X) -> false.  All persons are employed here.
        fine = NegativeConstraint((Atom("person", (X,)),), (Atom("employed", (X,)),))
        assert check_constraints(engine, [fine]) == []

        # but "no person may be employed" is clearly violated
        broken = NegativeConstraint((Atom("person", (X,)),), (Atom("unemployed", (X,)),))
        assert len(check_constraints(engine, [broken])) == 1

    def test_empty_positive_body_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            NegativeConstraint((), (Atom("p", (X,)),))

    def test_string_rendering(self):
        constraint = NegativeConstraint((Atom("p", (X,)),), (Atom("q", (X,)),))
        assert str(constraint) == "p(X), not q(X) -> false."


class TestEGDs:
    def test_functional_role_without_violation(self):
        engine = WellFoundedEngine(
            """
            worksFor(X, Y) -> employedBy(X, Y).
            worksFor(ann, acme). worksFor(bob, globex).
            """
        )
        egd = EGD((Atom("employedBy", (X, Y)), Atom("employedBy", (X, Z))), Y, Z)
        assert check_constraints(engine, [egd]) == []

    def test_hard_violation_on_distinct_constants(self):
        engine = WellFoundedEngine(
            """
            worksFor(X, Y) -> employedBy(X, Y).
            worksFor(ann, acme). worksFor(ann, globex).
            """
        )
        egd = EGD((Atom("employedBy", (X, Y)), Atom("employedBy", (X, Z))), Y, Z)
        violations = check_constraints(engine, [egd])
        assert violations and all(v.hard for v in violations)
        assert not is_consistent(engine, [egd])

    def test_soft_violation_when_a_null_is_involved(self):
        engine = WellFoundedEngine(
            """
            person(X) -> exists Y employeeId(X, Y).
            employeeId(ann, id1).
            person(ann).
            """
        )
        # ann has the asserted id1 and a Skolem null id: the EGD would have to
        # equate a null with a constant — a *soft* violation (separability issue),
        # not an outright inconsistency under the UNA.
        egd = EGD((Atom("employeeId", (X, Y)), Atom("employeeId", (X, Z))), Y, Z)
        violations = check_constraints(engine, [egd])
        assert violations
        assert all(not v.hard for v in violations)
        assert is_consistent(engine, [egd])
        assert not is_consistent(engine, [egd], treat_soft_as_violation=True)

    def test_equality_variable_must_occur_in_the_body(self):
        with pytest.raises(IllFormedRuleError):
            EGD((Atom("p", (X,)),), X, Y)

    def test_empty_body_is_rejected(self):
        with pytest.raises(IllFormedRuleError):
            EGD((), X, X)

    def test_string_rendering(self):
        egd = EGD((Atom("p", (X, Y)),), X, Y)
        assert str(egd) == "p(X, Y) -> X = Y."


class TestMixedChecks:
    def test_check_constraints_handles_both_kinds_together(self):
        engine = employment_engine()
        constraints = [
            NegativeConstraint((Atom("employed", (X,)), Atom("jobSeekerId", (X, Y))), ()),
            EGD((Atom("jobSeekerId", (X, Y)), Atom("jobSeekerId", (X, Z))), Y, Z),
        ]
        violations = check_constraints(engine, constraints)
        assert len(violations) == 1  # only the negative constraint fires
        assert isinstance(violations[0].constraint, NegativeConstraint)

    def test_violation_string_mentions_the_witness(self):
        engine = employment_engine()
        constraint = NegativeConstraint(
            (Atom("employed", (X,)), Atom("jobSeekerId", (X, Y))), ()
        )
        violation = check_constraints(engine, [constraint])[0]
        assert "b" in str(violation)
        assert "violation" in str(violation)
