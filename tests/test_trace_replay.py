"""The trace grammar and the replay client: round trips, checkpoints, budgets.

The trace format is a strict superset of the ``--updates`` script grammar
(PR 7): every ``.upd`` script parses as a trace, and the extensions —
``@think`` annotations, ``!check`` differential checkpoints and ``!expect``
expected-answer checkpoints — round-trip exactly through
``format_trace``/``parse_trace``.  The replay client must reproduce recorded
answers bit-for-bit, flag tampered expectations with the divergence exit
code, and resume losslessly after a budget interruption.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import ParseError
from repro.lang.parser import parse_atom, parse_program
from repro.lang.program import Database
from repro.scenarios import (
    ReplayInterrupted,
    ReplayReport,
    ScenarioBundle,
    build_target,
    check_event,
    expect_event,
    format_event,
    format_trace,
    generate_trace,
    insert_event,
    parse_trace,
    parse_trace_line,
    percentile,
    query_event,
    record_trace,
    replay_trace,
    retract_event,
    think_event,
)

# ---------------------------------------------------------------------------
# grammar
# ---------------------------------------------------------------------------


def test_every_updates_script_is_a_valid_trace():
    """PR 7 ``.upd`` back-compat: the old grammar parses unchanged."""
    script = """
    % warm-up inserts
    + edge(a, b).   % trailing comment
    + edge(b, c).   # hash comments too
    - edge(a, b).
    ? reach(X), not blocked(X)
    """
    events = parse_trace(script)
    assert [event.kind for event in events] == ["insert", "insert", "retract", "query"]
    assert events[0].atom == parse_atom("edge(a, b)")
    assert events[3].query == "? reach(X), not blocked(X)"


def test_extended_events_parse():
    events = parse_trace(
        "@think 0.25\n!check\n!expect ? win(X) => (a) (b)\n!expect ? win(a) => yes\n"
    )
    assert events[0] == think_event(0.25)
    assert events[1] == check_event()
    assert events[2] == expect_event("? win(X)", "(a) (b)")
    assert events[3].expected == "yes"


def test_expect_payload_is_not_comment_stripped():
    # '#' may legitimately appear nowhere in our constants, but the payload
    # after '=>' must survive verbatim either way
    event = parse_trace_line("!expect ? p(X) => no answers")
    assert event.expected == "no answers"


def test_round_trip_is_exact():
    events = [
        insert_event("edge(a, b)"),
        retract_event("edge(a, b)"),
        query_event("? reach(X)"),
        think_event(0.05),
        check_event(),
        expect_event("? reach(X)", "(a) (b)"),
    ]
    text = format_trace(events, header="round-trip fixture")
    assert text.startswith("% round-trip fixture\n")
    assert parse_trace(text) == events
    # and formatting the re-parse reproduces the text (idempotent)
    assert format_trace(parse_trace(text), header="round-trip fixture") == text


@pytest.mark.parametrize(
    "line",
    [
        "!expect ? p(X)",  # missing =>
        "wat",
        "@think soon",
        "+ not_an_atom((",
    ],
)
def test_malformed_lines_raise_parse_errors(line):
    with pytest.raises(ParseError):
        parse_trace_line(line, 7)


def test_parse_errors_carry_the_line_number():
    with pytest.raises(ParseError, match="line 3"):
        parse_trace("+ a(b).\n+ a(c).\nwat\n")


def test_unknown_event_kind_is_rejected():
    from repro.scenarios import TraceEvent

    with pytest.raises(ValueError):
        TraceEvent("mystery")


# ---------------------------------------------------------------------------
# seeded generation
# ---------------------------------------------------------------------------


def test_generate_trace_is_deterministic_and_balanced():
    pool = [parse_atom(f"alert(s{i})") for i in range(6)]
    queries = ["? alert(X)"]
    first = generate_trace(pool, queries, length=40, seed=3)
    assert first == generate_trace(pool, queries, length=40, seed=3)
    assert first != generate_trace(pool, queries, length=40, seed=4)
    # toggling discipline: an insert of a fact can only follow its retract
    present = set()
    for event in first:
        if event.kind == "insert":
            assert event.atom not in present
            present.add(event.atom)
        elif event.kind == "retract":
            assert event.atom in present
            present.discard(event.atom)
    assert first[-1].kind == "check"


def test_generate_trace_respects_initially_present():
    pool = [parse_atom("a(x)"), parse_atom("a(y)")]
    trace = generate_trace(
        pool, [], length=6, seed=0, initially_present=pool, checkpoint_every=0
    )
    # everything starts present, so the first touch of each fact is a retract
    first_touch = {}
    for event in trace:
        if event.is_update:
            first_touch.setdefault(event.atom, event.kind)
    assert set(first_touch.values()) == {"retract"}


def test_generate_trace_think_time_annotations():
    pool = [parse_atom("a(x)")]
    trace = generate_trace(pool, [], length=5, seed=0, think_time=0.01)
    thinks = [event for event in trace if event.kind == "think"]
    assert len(thinks) == 5
    assert all(0.005 <= event.seconds <= 0.015 for event in thinks)


def test_generate_trace_needs_some_workload():
    with pytest.raises(ValueError):
        generate_trace([], [], length=5)


# ---------------------------------------------------------------------------
# percentiles
# ---------------------------------------------------------------------------


def test_percentile_interpolates():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 4.0
    assert percentile(samples, 50) == 2.5
    assert percentile([7.0], 95) == 7.0


def test_percentile_edges():
    # q=0 / q=100 are exactly min/max, including on unsorted input
    samples = [3.0, 1.0, 4.0, 2.0]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 4.0
    assert percentile([5.0], 0) == 5.0
    assert percentile([5.0], 100) == 5.0


def test_percentile_rejects_empty_and_out_of_range():
    with pytest.raises(ValueError, match="empty"):
        percentile([], 50)
    with pytest.raises(ValueError, match="0, 100"):
        percentile([1.0], -1)
    with pytest.raises(ValueError, match="0, 100"):
        percentile([1.0], 101)


def test_latency_summary_renders_none_for_empty_kinds():
    report = ReplayReport(target="unit")
    summary = report.latency_summary("insert", "retract")
    assert summary["count"] == 0
    assert summary["total_seconds"] == 0.0
    assert summary["p50_seconds"] is None
    assert summary["p95_seconds"] is None
    assert summary["p99_seconds"] is None
    assert summary["max_seconds"] is None
    # the aggregate view must stay strict-JSON serialisable (no NaN)
    text = json.dumps(report.summary(), allow_nan=False)
    assert '"p50_seconds": null' in text


# ---------------------------------------------------------------------------
# record -> file -> replay round trip
# ---------------------------------------------------------------------------

_CHAIN_RULES = """
source(X) -> reach(X).
edge(X, Y), reach(X) -> reach(Y).
sink(X), not reach(X) -> dark(X).
"""


def chain_bundle(length=6) -> ScenarioBundle:
    program, _ = parse_program(_CHAIN_RULES)
    facts = [parse_atom(f"edge(n{i}, n{i + 1})") for i in range(length - 1)]
    facts.append(parse_atom(f"sink(n{length - 1})"))
    facts.append(parse_atom("source(n0)"))
    return ScenarioBundle(
        name="chain-fixture",
        description="reachability chain used by the replay unit tests",
        program=program,
        database=Database(facts),
        queries=("? reach(X)", "? dark(X)"),
        trace=(),
        dynamic_facts=(parse_atom("source(n0)"),),
        initially_present=(parse_atom("source(n0)"),),
    )


def test_record_to_file_to_replay_reproduces_answers(tmp_path):
    bundle = chain_bundle()
    trace = [
        query_event("? reach(X)"),
        retract_event("source(n0)"),
        query_event("? reach(X)"),
        query_event("? dark(X)"),
        insert_event("source(n0)"),
        query_event("? dark(X)"),
        check_event(),
    ]
    recorded, report = record_trace(trace, build_target(bundle), check=True)
    assert report.ok and report.checks == 1
    # queries became pinned expectations; everything else survives verbatim
    assert [e.kind for e in recorded] == [
        "expect", "retract", "expect", "expect", "insert", "expect", "check",
    ]

    path = tmp_path / "chain.trace"
    path.write_text(format_trace(recorded, header="chain fixture"))
    replayed = replay_trace(
        parse_trace(path.read_text()), build_target(bundle), check=True
    )
    assert replayed.ok
    assert replayed.exit_code == 0
    assert replayed.expects == 4


def test_tampered_expectation_reports_divergence(tmp_path):
    bundle = chain_bundle()
    recorded, _ = record_trace(
        [query_event("? reach(X)")], build_target(bundle)
    )
    path = tmp_path / "tampered.trace"
    path.write_text(format_trace(recorded).replace("(n0)", "(n9)"))
    report = replay_trace(parse_trace(path.read_text()), build_target(bundle))
    assert not report.ok
    assert report.exit_code == 3
    assert "expected" in report.divergences[0]


def test_rerecording_a_recorded_trace_is_idempotent():
    bundle = chain_bundle()
    trace = [query_event("? reach(X)"), retract_event("source(n0)"), query_event("? dark(X)")]
    once, _ = record_trace(trace, build_target(bundle))
    twice, report = record_trace(once, build_target(bundle))
    assert report.ok
    assert twice == once


def test_boolean_queries_record_yes_no():
    bundle = chain_bundle()
    recorded, _ = record_trace(
        [query_event("? reach(n1)"), retract_event("source(n0)"), query_event("? reach(n1)")],
        build_target(bundle),
    )
    assert recorded[0].expected == "yes"
    assert recorded[2].expected == "no"


# ---------------------------------------------------------------------------
# budget interruption and lossless resume
# ---------------------------------------------------------------------------


def long_chain_trace():
    return [
        retract_event("source(n0)"),
        query_event("? reach(X)"),
        insert_event("source(n0)"),
        query_event("? reach(X)"),
        check_event(),
    ]


def test_budget_interrupted_replay_resumes_losslessly():
    bundle = chain_bundle(length=14)
    reference = replay_trace(
        long_chain_trace(), build_target(bundle), check=True
    )
    assert reference.ok

    # A tiny per-update round budget imposed *after* the initial load:
    # re-inserting source(n0) must re-derive the whole chain, which cannot
    # fit in one round.
    target = build_target(bundle)
    target.engine.max_rounds_per_update = 1
    events = long_chain_trace()
    with pytest.raises(ReplayInterrupted) as error_info:
        replay_trace(events, target, check=True)
    error = error_info.value
    assert error.index < len(events)
    partial = error.report

    # Lift the budget and resume from the interrupted event with the same
    # target and report: the staged update completes first, then the tail
    # replays — answers identical to the uninterrupted run.
    target.engine.max_rounds_per_update = None
    resumed = replay_trace(
        events[error.index:], target, check=True, report=partial
    )
    assert resumed is partial
    assert resumed.ok, resumed.divergences
    assert [r.detail for r in resumed.records if r.kind == "query"] == [
        r.detail for r in reference.records if r.kind == "query"
    ]
    assert resumed.checks == reference.checks


def test_think_events_are_tallied_not_timed():
    bundle = chain_bundle()
    report = replay_trace(
        [think_event(0.5), query_event("? reach(n0)")],
        build_target(bundle),
    )
    # not honored by default: no sleeping, but the annotation is accounted
    assert report.think_seconds == 0.5
    assert all(record.kind != "think" for record in report.records)
    assert report.latency_summary("query")["count"] == 1
