"""E4 — the WFS for Datalog± generalises both stratified Datalog± and the
classical LP well-founded semantics.

Three comparisons on the same workloads:

* win/move game: the Datalog± engine must assign exactly the same truth
  values as the classical LP substrate (existential-free programs), and the
  table reports the cost of both routes;
* a stratified program: the WFS coincides with the stratified (perfect-model)
  semantics; again both costs are reported;
* the employment ontology of Example 2: the stratified Datalog± baseline of
  [1] *rejects* it (negation cycle), while the WFS engine answers — the "who
  wins" column of this experiment.
"""

from __future__ import annotations

import pytest

from repro.core.engine import WellFoundedEngine
from repro.core.stratified import StratifiedDatalogPM
from repro.exceptions import NotStratifiedError
from repro.lp.grounding import relevant_grounding
from repro.lp.stratification import perfect_model
from repro.lp.wfs import well_founded_model
from repro.bench.generators import (
    employment_workload,
    reachability_program,
    win_move_datalog_pm,
    win_move_game,
)
from repro.bench.harness import ResultTable, time_call

GAME_SIZES = [20, 40, 80]


def lp_win_move(size: int):
    return well_founded_model(relevant_grounding(win_move_game(size, seed=31)))


def dpm_win_move(size: int):
    program, database = win_move_datalog_pm(size, seed=31)
    return WellFoundedEngine(program, database).model()


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("size", GAME_SIZES)
def test_win_move_via_lp_substrate(benchmark, size):
    """Classical LP WFS of the win/move game."""
    benchmark.pedantic(lp_win_move, args=(size,), rounds=2, iterations=1)


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("size", GAME_SIZES)
def test_win_move_via_datalog_pm_engine(benchmark, size):
    """The same game through the guarded Datalog± WFS engine."""
    model = benchmark.pedantic(dpm_win_move, args=(size,), rounds=2, iterations=1)
    reference = lp_win_move(size)
    for atom in reference.universe():
        if atom.predicate == "win":
            assert reference.is_true(atom) == model.is_true(atom)
            assert reference.is_false(atom) == model.is_false(atom)


@pytest.mark.experiment("E4")
def test_stratified_program_wfs_equals_perfect_model(benchmark):
    """On a stratified program the WFS must equal the perfect model."""
    program = reachability_program(60, seed=37)
    ground = relevant_grounding(program)

    wfs = benchmark(lambda: well_founded_model(ground))
    perfect = perfect_model(program, ground=ground)
    assert wfs.is_total()
    assert wfs.true_atoms() == perfect.true_atoms()


@pytest.mark.experiment("E4")
def test_wfs_succeeds_where_stratified_datalog_pm_is_undefined(benchmark):
    """Example 2's ontology: stratified Datalog± rejects it, the WFS answers."""
    program, database = employment_workload(40, seed=41)

    with pytest.raises(NotStratifiedError):
        StratifiedDatalogPM(program, database)

    engine_result = benchmark.pedantic(
        lambda: WellFoundedEngine(program, database).holds("? employeeID(X, V), validID(V)"),
        rounds=3,
        iterations=1,
    )
    assert engine_result is True


def report() -> None:
    """Print the E4 comparison tables."""
    table = ResultTable(
        "E4a — win/move game: classical LP WFS vs guarded Datalog± WFS engine",
        ["positions", "LP substrate (s)", "Datalog± engine (s)", "models agree"],
    )
    for size in GAME_SIZES:
        lp_seconds = time_call(lambda s=size: lp_win_move(s), repeats=3)
        dpm_seconds = time_call(lambda s=size: dpm_win_move(s), repeats=3)
        reference, model = lp_win_move(size), dpm_win_move(size)
        agree = all(
            reference.is_true(a) == model.is_true(a)
            and reference.is_false(a) == model.is_false(a)
            for a in reference.universe()
            if a.predicate == "win"
        )
        table.add_row(size, lp_seconds, dpm_seconds, agree)
    table.print()

    table = ResultTable(
        "E4b — semantics coverage (who can answer which workload)",
        ["workload", "stratified Datalog± [1]", "WFS (this paper)"],
    )
    table.add_row("stratified reachability", "yes (= WFS)", "yes")
    table.add_row("win/move game (unstratified)", "rejected", "yes")
    table.add_row("Example 2 employment ontology", "rejected", "yes")
    table.print()


if __name__ == "__main__":
    report()
