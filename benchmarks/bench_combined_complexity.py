"""E3 — combined complexity (Theorem 13/14: 2-EXPTIME in general, EXPTIME for
bounded arity).

Here the database stays small and fixed while the *program/schema* grows: the
number of predicates and, separately, the maximum predicate arity.  The paper
predicts much steeper growth in these parameters than in the data (E2); the
reported series makes that contrast visible (the arity sweep in particular
grows much faster than linearly), without attempting to reach the
doubly-exponential asymptotics on a laptop.
"""

from __future__ import annotations

import pytest

from repro.core.engine import WellFoundedEngine
from repro.bench.generators import combined_complexity_workload
from repro.bench.harness import ResultTable, fit_powerlaw_exponent, scaling_series

#: sweep over the number of predicates (arity fixed at 2)
PREDICATE_COUNTS = [2, 4, 8, 16]

#: sweep over the maximum arity (number of predicates fixed at 3)
ARITIES = [1, 2, 3, 4]


def build_predicates(num_predicates: int):
    return combined_complexity_workload(num_predicates, arity=2)


def build_arity(arity: int):
    return combined_complexity_workload(3, arity=arity, num_constants=3)


def solve(workload) -> int:
    program, database = workload
    engine = WellFoundedEngine(program, database, max_depth=9)
    model = engine.model()
    return len(model.true_atoms())


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("num_predicates", PREDICATE_COUNTS)
def test_combined_complexity_in_schema_size(benchmark, num_predicates):
    """Growing the number of predicates at fixed arity and database."""
    workload = build_predicates(num_predicates)
    benchmark.pedantic(solve, args=(workload,), rounds=2, iterations=1)


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("arity", ARITIES)
def test_combined_complexity_in_arity(benchmark, arity):
    """Growing the maximum predicate arity at fixed schema size and database."""
    workload = build_arity(arity)
    benchmark.pedantic(solve, args=(workload,), rounds=2, iterations=1)


def report() -> None:
    """Print both E3 sweeps and their growth exponents."""
    predicate_series = scaling_series(PREDICATE_COUNTS, build_predicates, solve, repeats=2)
    table = ResultTable(
        "E3a — combined complexity: growing number of predicates (arity 2)",
        ["predicates", "seconds"],
    )
    for size, elapsed in predicate_series:
        table.add_row(size, elapsed)
    table.print()

    arity_series = scaling_series(ARITIES, build_arity, solve, repeats=2)
    table = ResultTable(
        "E3b — combined complexity: growing arity (3 predicates)",
        ["arity", "seconds"],
    )
    for size, elapsed in arity_series:
        table.add_row(size, elapsed)
    table.print()

    print(
        "\ngrowth exponents: predicates ~ %.2f, arity ~ %.2f "
        "(combined complexity grows much faster than the data complexity of E2)"
        % (
            fit_powerlaw_exponent(*zip(*predicate_series)),
            fit_powerlaw_exponent(*zip(*arity_series)),
        )
    )


if __name__ == "__main__":
    report()
