"""Scenario-corpus replay benchmark — warm serving latency across the registry.

PR 7's view-maintenance bench measured one synthetic shape (independent
reachability chains).  The scenario corpus (``repro.scenarios``) replaces
hand-rolled shapes with the registered workloads — telemetry RCA,
access-control policies, win/move game graphs, a LUBM-flavoured ontology and
supply-chain chase rules — each bundling a seeded update/query trace.  This
benchmark replays every registered scenario's trace against a warm
:class:`repro.views.MaterializedEngine` with differential checkpoints ON
(``!check`` compares the maintained model against ``scratch_model()``), so
the headline ``all_models_identical`` is a hard correctness gate, and
reports the serving-latency profile:

* p50/p95/p99/max wall-clock per **update** (insert/retract + maintenance)
  and per **query** (over the maintained model),
* the query cache hit-rate (reads the uniform ``last_query_stats`` shape),
* the from-scratch comparator: the median ``scratch_model()`` wall-clock on
  the same states (measured at the checkpoints), and the speedup of a
  maintained update over a rebuild — the number the ROADMAP thresholds.

Running the module directly prints the table and writes
``BENCH_scenarios.json`` at the repository root (uploaded as a CI
artifact).  ``python benchmarks/bench_scenarios.py smoke`` runs shortened
traces for CI; explicit scenario names restrict the run
(``python benchmarks/bench_scenarios.py win-move supply-chain``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import ResultTable
from repro.scenarios import build_scenario, build_target, replay_trace, scenario_names

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

BACKEND = "columnar"
#: Trace lengths: the full report stresses the warm path; smoke keeps CI fast.
REPORT_TRACE_LENGTH = 120
SMOKE_TRACE_LENGTH = 24


def measure_scenario(
    name: str, *, trace_length: int | None = None, backend: str = BACKEND
) -> dict:
    """Replay one scenario (checkpoints on) and summarise its latency profile."""
    overrides = {"trace_length": trace_length} if trace_length else {}
    bundle = build_scenario(name, **overrides)
    target = build_target(bundle, engine="materialized", backend=backend)

    # Instrument the differential checkpoints so the oracle's own wall-clock
    # becomes the from-scratch comparator for the same engine states.
    scratch_seconds: list[float] = []
    original_scratch = target.engine.scratch_model

    def timed_scratch():
        started = time.perf_counter()
        model = original_scratch()
        scratch_seconds.append(time.perf_counter() - started)
        return model

    target.engine.scratch_model = timed_scratch

    report = replay_trace(bundle.trace, target, check=True)
    updates = report.latency_summary("insert", "retract")
    queries = report.latency_summary("query", "expect")
    scratch_seconds.sort()
    scratch_p50 = (
        scratch_seconds[len(scratch_seconds) // 2] if scratch_seconds else float("nan")
    )
    update_p50 = updates["p50_seconds"]
    speedup = scratch_p50 / update_p50 if update_p50 else float("nan")
    return {
        "scenario": name,
        "params": dict(bundle.params),
        "events": report.events,
        "updates": updates,
        "queries": queries,
        "checkpoints": report.checks,
        "query_cache_hit_rate": report.query_cache_hit_rate,
        "scratch_p50_seconds": scratch_p50,
        "update_speedup_vs_scratch": speedup,
        "models_identical": report.ok,
        "divergences": list(report.divergences),
    }


def measure(names=None, *, trace_length: int | None = None) -> dict:
    """Replay the selected (default: all) scenarios; return the JSON payload."""
    names = list(names) if names else list(scenario_names())
    rows = [measure_scenario(name, trace_length=trace_length) for name in names]
    return {
        "benchmark": "scenario corpus trace replay",
        "description": (
            "every registered scenario's seeded update/query trace replayed "
            "against a warm MaterializedEngine with differential checkpoints "
            "on; scratch comparator timed at the same checkpoints"
        ),
        "backend": BACKEND,
        "trace_length": trace_length,
        "scenarios": names,
        "results": rows,
        "all_models_identical": all(row["models_identical"] for row in rows),
    }


@pytest.mark.experiment("scenarios")
@pytest.mark.parametrize("name", ["telemetry-rca", "win-move", "supply-chain"])
def test_scenario_replay_matches_oracle(name):
    """Replaying a scenario with checkpoints on never diverges from the oracle."""
    row = measure_scenario(name, trace_length=SMOKE_TRACE_LENGTH)
    assert row["models_identical"], row["divergences"]
    assert row["checkpoints"] > 0
    assert row["updates"]["count"] > 0


def report(names=None, *, trace_length: int | None = None) -> dict:
    """Print the replay-latency table and write ``BENCH_scenarios.json``."""
    data = measure(names, trace_length=trace_length)
    table = ResultTable(
        "Scenario trace replay — warm maintained engine, checkpoints on",
        [
            "scenario",
            "events",
            "upd p50 (ms)",
            "upd p99 (ms)",
            "qry p50 (ms)",
            "qry p99 (ms)",
            "hit rate",
            "scratch p50 (ms)",
            "speedup",
            "identical",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["scenario"],
            row["events"],
            f"{row['updates']['p50_seconds'] * 1000:.3f}",
            f"{row['updates']['p99_seconds'] * 1000:.3f}",
            f"{row['queries']['p50_seconds'] * 1000:.3f}",
            f"{row['queries']['p99_seconds'] * 1000:.3f}",
            "n/a"
            if row["query_cache_hit_rate"] is None
            else f"{row['query_cache_hit_rate']:.2f}",
            f"{row['scratch_p50_seconds'] * 1000:.3f}",
            f"{row['update_speedup_vs_scratch']:.1f}x",
            row["models_identical"],
        )
    table.print()
    print(
        f"\n{len(data['results'])} scenarios, all models identical to the "
        f"from-scratch oracle: {data['all_models_identical']}"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    argv = sys.argv[1:]
    if argv and argv[0] == "smoke":
        report(argv[1:] or None, trace_length=SMOKE_TRACE_LENGTH)
    else:
        report(argv or None, trace_length=REPORT_TRACE_LENGTH)
