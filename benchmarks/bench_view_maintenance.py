"""Materialized-view maintenance benchmark — DRed/counting vs. from-scratch.

PR 6 left the warm path one-directional: engines stayed warm while rules
*grew* (chase deepening), but any change to the *database* meant rebuilding
everything.  PR 7 adds `repro.views.MaterializedEngine`: facts are inserted
by regrounding only the delta the new facts can fire (reusing the resumable
semi-naive grounder) and retracted by DRed delete–rederive with a counting
fast path for non-recursive atoms, with `IncrementalWFS` re-solving only the
touched components.

The workload is **many independent reachability chains** — the shape where
maintenance should shine, because a single-fact update touches one chain
while a from-scratch rebuild pays for all of them:

* ``chains`` chains of ``CHAIN_LENGTH`` nodes: ``source(c_0)``,
  ``edge(c_i, c_{i+1})`` facts;
* rules ``source(X) -> reach(X)``, ``reach(X), edge(X, Y) -> reach(Y)`` and
  the stratified-negation probe ``sink(X), not reach(X) -> unreachable(X)``
  (each chain's last node is a ``sink``), so cutting a chain flips a
  negative literal and the WFS ripple is exercised, not just the positive
  closure.

Each trial retracts a mid-chain edge (DRed overdeletes the chain's suffix,
the negation probe flips) and re-inserts it (delta grounding reactivates the
suffix).  The maintained latency charged is *update + model re-solve* — the
time until queries are answerable again.  The from-scratch comparator is
:meth:`MaterializedEngine.scratch_model` on the same state (full reground +
full solve), which doubles as the differential oracle: the maintained model
is checked bit-identical against it after **every** update.

Running the module directly prints the comparison table and writes
``BENCH_view_maintenance.json`` at the repository root (uploaded as a CI
artifact; the ROADMAP asks ≥ 10× for both single-fact insert and retract at
the largest size).  Pass explicit chain counts for a quick smoke run
(``python benchmarks/bench_view_maintenance.py 4 8``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import ResultTable
from repro.lang.atoms import Atom
from repro.lang.parser import parse_normal_program
from repro.lang.terms import Constant
from repro.views import MaterializedEngine

SMOKE_SIZES = [4, 8]
#: Chain counts for the standalone report; the largest is where the JSON's
#: headline speedups are measured.
REPORT_SIZES = [16, 48, 128]

CHAIN_LENGTH = 24
#: Retract/insert trials per size (each on a different chain).
TRIALS = 3

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_view_maintenance.json"

RULES = parse_normal_program(
    """
    source(X) -> reach(X).
    reach(X), edge(X, Y) -> reach(Y).
    sink(X), not reach(X) -> unreachable(X).
    """
)


def node(chain: int, position: int) -> Constant:
    return Constant(f"n{chain}_{position}")


def chain_facts(chains: int, length: int = CHAIN_LENGTH) -> list[Atom]:
    """EDB of *chains* independent chains with a negation probe at each end."""
    facts: list[Atom] = []
    for chain in range(chains):
        facts.append(Atom("source", (node(chain, 0),)))
        facts.append(Atom("sink", (node(chain, length - 1),)))
        for position in range(length - 1):
            facts.append(
                Atom("edge", (node(chain, position), node(chain, position + 1)))
            )
    return facts


def model_fingerprint(model):
    return (model.true_atoms(), model.false_atoms(), model.undefined_atoms())


def _maintained_latency(engine: MaterializedEngine, update) -> float:
    """Seconds from issuing *update* until queries are answerable again."""
    started = time.perf_counter()
    update()
    engine.model()
    return time.perf_counter() - started


def measure(sizes=None, *, backend: str = "tuple", trials: int = TRIALS) -> dict:
    """Compare maintained single-fact updates against from-scratch rebuilds."""
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    rows = []
    for chains in sizes:
        engine = MaterializedEngine(
            RULES, chain_facts(chains), backend=backend
        )
        identical = True
        insert_seconds: list[float] = []
        retract_seconds: list[float] = []
        scratch_seconds: list[float] = []
        for trial in range(trials):
            chain = (trial * chains) // trials
            mid = CHAIN_LENGTH // 2
            edge = Atom("edge", (node(chain, mid), node(chain, mid + 1)))

            retract_seconds.append(
                _maintained_latency(engine, lambda: engine.retract_facts([edge]))
            )
            started = time.perf_counter()
            oracle = engine.scratch_model()
            scratch_seconds.append(time.perf_counter() - started)
            identical &= model_fingerprint(engine.model()) == model_fingerprint(oracle)

            insert_seconds.append(
                _maintained_latency(engine, lambda: engine.add_facts([edge]))
            )
            started = time.perf_counter()
            oracle = engine.scratch_model()
            scratch_seconds.append(time.perf_counter() - started)
            identical &= model_fingerprint(engine.model()) == model_fingerprint(oracle)

        scratch = sum(scratch_seconds) / len(scratch_seconds)
        insert = sum(insert_seconds) / len(insert_seconds)
        retract = sum(retract_seconds) / len(retract_seconds)
        stored, active = engine.ground_rule_count()
        rows.append(
            {
                "chains": chains,
                "edb_facts": len(engine.edb),
                "stored_rules": stored,
                "active_rules": active,
                "scratch_seconds": scratch,
                "insert_seconds": insert,
                "retract_seconds": retract,
                "insert_speedup": scratch / insert if insert > 0 else float("inf"),
                "retract_speedup": scratch / retract if retract > 0 else float("inf"),
                "counting_kept": engine.total_stats["counting_kept"],
                "overdeleted": engine.total_stats["overdeleted"],
                "models_identical": identical,
            }
        )
    largest = rows[-1]
    return {
        "experiment": "view_maintenance",
        "workload": (
            f"{CHAIN_LENGTH}-node independent reachability chains with a "
            "stratified-negation probe; per-trial mid-chain edge retract + "
            "re-insert, maintained latency = update + model re-solve"
        ),
        "backend": backend,
        "sizes": sizes,
        "results": rows,
        "largest_size": largest["chains"],
        "largest_insert_speedup": largest["insert_speedup"],
        "largest_retract_speedup": largest["retract_speedup"],
        "all_models_identical": all(row["models_identical"] for row in rows),
    }


@pytest.mark.experiment("view_maintenance")
@pytest.mark.parametrize("chains", SMOKE_SIZES)
def test_maintained_models_match_scratch(chains):
    """The maintained model must equal the from-scratch oracle at every step."""
    data = measure([chains], trials=2)
    assert data["all_models_identical"]
    row = data["results"][0]
    assert row["overdeleted"] > 0  # the retractions actually exercised DRed


def report(sizes=None) -> dict:
    """Print the comparison table and write ``BENCH_view_maintenance.json``."""
    data = measure(sizes)
    table = ResultTable(
        "Materialized-view maintenance — single-fact update vs. from-scratch rebuild",
        [
            "chains",
            "facts",
            "rules",
            "scratch (s)",
            "insert (s)",
            "retract (s)",
            "insert speedup",
            "retract speedup",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["chains"],
            row["edb_facts"],
            row["stored_rules"],
            row["scratch_seconds"],
            row["insert_seconds"],
            row["retract_seconds"],
            f"{row['insert_speedup']:.1f}x",
            f"{row['retract_speedup']:.1f}x",
        )
    table.print()
    print(
        f"\nlargest size ({data['largest_size']} chains): insert "
        f"{data['largest_insert_speedup']:.1f}x, retract "
        f"{data['largest_retract_speedup']:.1f}x vs. from-scratch, "
        f"models identical: {data['all_models_identical']}"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    cli_sizes = [int(arg) for arg in sys.argv[1:]] or None
    report(cli_sizes)
