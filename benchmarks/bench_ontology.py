"""E5 — ontological reasoning under the WFS with the UNA (Example 2 at scale).

Two ontology workloads:

* the employment ontology of Example 2, scaled in the number of persons; the
  experiment checks the paper's qualitative claim (every employed person's
  employee ID is derived to be a *valid* ID, which needs the UNA) and
  measures reasoning time;
* a LUBM-flavoured university ontology with existential axioms, an inverse
  role and default negation, where the stratified baseline is applicable, so
  the table also compares WFS vs stratified cost on ontologies.
"""

from __future__ import annotations

import pytest

from repro.dl.reasoner import OntologyReasoner
from repro.core.stratified import StratifiedDatalogPM
from repro.bench.generators import employment_ontology, university_ontology
from repro.bench.harness import ResultTable, time_call

PERSON_COUNTS = [20, 60, 120]
UNIVERSITY_SIZES = [(2, 10), (4, 20), (8, 30)]


def employment_reasoner(num_persons: int) -> OntologyReasoner:
    return OntologyReasoner(employment_ontology(num_persons, seed=43))


def count_valid_ids(reasoner: OntologyReasoner) -> int:
    model = reasoner.model()
    return sum(1 for atom in model.true_atoms() if atom.predicate == "validID")


@pytest.mark.experiment("E5")
@pytest.mark.parametrize("num_persons", PERSON_COUNTS)
def test_employment_ontology_reasoning(benchmark, num_persons):
    """Classify the employment ontology and count derived valid IDs."""
    valid = benchmark.pedantic(
        lambda: count_valid_ids(employment_reasoner(num_persons)),
        rounds=2,
        iterations=1,
    )
    # Every employed person has an employee ID whose validity needs the UNA.
    assert valid > 0


@pytest.mark.experiment("E5")
@pytest.mark.parametrize("departments,students", UNIVERSITY_SIZES)
def test_university_ontology_reasoning(benchmark, departments, students):
    """Well-founded reasoning over the university ontology."""
    def run():
        reasoner = OntologyReasoner(university_ontology(departments, students, seed=47))
        model = reasoner.model()
        return sum(1 for atom in model.true_atoms() if atom.predicate == "needsAdvisor")

    needing_advisor = benchmark.pedantic(run, rounds=2, iterations=1)
    assert needing_advisor >= 0


def report() -> None:
    """Print the E5 tables."""
    table = ResultTable(
        "E5a — Example 2 employment ontology under WFS + UNA",
        ["persons", "valid IDs derived", "seconds"],
    )
    for count in PERSON_COUNTS:
        seconds = time_call(lambda c=count: count_valid_ids(employment_reasoner(c)), repeats=2)
        table.add_row(count, count_valid_ids(employment_reasoner(count)), seconds)
    table.print()

    table = ResultTable(
        "E5b — university ontology: WFS engine vs stratified baseline",
        ["departments", "students/dept", "WFS (s)", "stratified (s)"],
    )
    for departments, students in UNIVERSITY_SIZES:
        ontology = university_ontology(departments, students, seed=47)
        reasoner = OntologyReasoner(ontology)
        wfs_seconds = time_call(lambda r=reasoner: OntologyReasoner(ontology).model(), repeats=2)
        stratified_seconds = time_call(
            lambda r=reasoner: StratifiedDatalogPM(r.program, r.database).model(), repeats=2
        )
        table.add_row(departments, students, wfs_seconds, stratified_seconds)
    table.print()


if __name__ == "__main__":
    report()
