"""Parallel WFS resolve benchmark — ready-set scheduling over a wide condensation.

The SCC-modular evaluator solves each condensation component as a pure
function of its external inputs, so components with no dependency path
between them can be solved concurrently (``repro.lp.parallel``).  This
benchmark measures that overlap on a **wide-condensation workload**: many
mutually independent ground chains, each feeding a negative two-cycle, so
the condensation DAG is a broad forest of small components (the shape where
a ready-set schedule has maximal slack).

Two legs are reported per size:

* **latency leg** (the headline): every component solve carries an injected
  per-component latency via ``component_hook`` — the serving regime where a
  component's inputs arrive from an external source (a fetch, an RPC, a
  cold page).  The hook fires for **every worker count including the
  ``workers=1`` baseline**, so the comparison is apples-to-apples; worker
  threads overlap the waits, which is exactly what the scheduler is for.
  The ROADMAP target — ≥ 2× at 4 workers on the largest size — is measured
  here.
* **compute leg**: the same resolves with no injected latency.  Under a GIL
  with one CPU this records the scheduler's bookkeeping overhead honestly
  (≈ 1× or below); on free-threaded builds or multi-core process pools it
  turns into real CPU scaling.  It never gates.

Every measured model is checked bit-identical (true/false/undefined sets
and iteration counts) against the serial oracle before any timing is
reported — ``all_models_identical`` is a hard correctness gate.

Running the module directly prints the table and writes
``BENCH_parallel_wfs.json`` at the repository root (uploaded as a CI
artifact).  ``python benchmarks/bench_parallel_wfs.py smoke`` runs the
shortened sizes for CI.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import ResultTable
from repro.lang.atoms import Atom
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant
from repro.lp.grounding import GroundProgram
from repro.lp.wfs import well_founded_model

SMOKE_SIZES = [4, 8]
#: Chain counts for the standalone report; the largest is where the JSON's
#: headline speedup is measured.
REPORT_SIZES = [16, 32, 64]

#: Derivation steps per chain (each step is its own singleton component).
CHAIN_LENGTH = 6
#: Injected per-component latency for the latency leg (seconds).
INJECTED_LATENCY = 0.002
WORKER_COUNTS = (1, 2, 4, 8)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_wfs.json"


def atom(name: str, *args: str) -> Atom:
    return Atom(name, tuple(Constant(a) for a in args))


def wide_condensation_program(chains: int, length: int = CHAIN_LENGTH) -> GroundProgram:
    """``chains`` independent derivation chains, each ending in a 2-cycle.

    Chain ``i`` derives ``c(i,0) .. c(i,length)`` (singleton components in a
    dependency line), then ``p(i)``/``q(i)`` form a negative two-cycle (one
    undefined component) and ``dead(i)`` never derives (a false component).
    No atom of chain ``i`` reaches chain ``j``: the condensation is a forest
    ``chains`` trees wide.
    """
    rules: list[NormalRule] = []
    for i in range(chains):
        rules.append(NormalRule(atom("c", str(i), "0")))
        for j in range(1, length + 1):
            rules.append(
                NormalRule(atom("c", str(i), str(j)), (atom("c", str(i), str(j - 1)),))
            )
        rules.append(
            NormalRule(
                atom("p", str(i)),
                (atom("c", str(i), str(length)),),
                (atom("q", str(i)),),
            )
        )
        rules.append(NormalRule(atom("q", str(i)), (), (atom("p", str(i)),)))
        rules.append(NormalRule(atom("dead", str(i)), (atom("never", str(i)),)))
    return GroundProgram(rules)


def model_fingerprint(model):
    return (
        model.true_atoms(),
        model.false_atoms(),
        model.undefined_atoms(),
        model.iterations,
    )


def _time_resolve(program, *, workers, latency, samples):
    """Best-of-``samples`` wall-clock of one configuration, plus its model."""
    hook = (lambda component: time.sleep(latency)) if latency else None
    best = float("inf")
    model = None
    for _ in range(samples):
        started = time.perf_counter()
        model = well_founded_model(
            program, workers=workers, executor="thread", component_hook=hook
        )
        best = min(best, time.perf_counter() - started)
    return best, model


def measure(
    sizes=None,
    *,
    worker_counts=WORKER_COUNTS,
    samples: int = 3,
    latency: float = INJECTED_LATENCY,
) -> dict:
    """Time the latency and compute legs across sizes and worker counts."""
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    worker_counts = list(worker_counts)
    rows = []
    for chains in sizes:
        program = wide_condensation_program(chains)
        reference = model_fingerprint(well_founded_model(program))
        components = len(program.index().dependency_components_ids())
        identical = True
        latency_seconds: dict[str, float] = {}
        compute_seconds: dict[str, float] = {}
        for workers in worker_counts:
            seconds, model = _time_resolve(
                program, workers=workers, latency=latency, samples=samples
            )
            identical = identical and model_fingerprint(model) == reference
            latency_seconds[str(workers)] = seconds
            seconds, model = _time_resolve(
                program, workers=workers, latency=0.0, samples=samples
            )
            identical = identical and model_fingerprint(model) == reference
            compute_seconds[str(workers)] = seconds
        baseline = latency_seconds[str(worker_counts[0])]
        rows.append(
            {
                "chains": chains,
                "ground_rules": len(program),
                "components": components,
                "injected_latency_seconds": latency,
                "latency_leg_seconds": latency_seconds,
                "latency_leg_speedup": {
                    key: baseline / value if value > 0 else float("inf")
                    for key, value in latency_seconds.items()
                },
                "compute_leg_seconds": compute_seconds,
                "models_identical": identical,
            }
        )
    largest = rows[-1]
    return {
        "benchmark": "parallel_wfs",
        "workload": (
            f"wide_condensation_program(chains, length={CHAIN_LENGTH}) — "
            "independent chains ending in negative two-cycles; resolve-only "
            "timings, thread pool"
        ),
        "note": (
            "the latency leg injects the same per-component wait at every "
            "worker count (serial baseline included); the compute leg is "
            "pure bookkeeping under a GIL and never gates"
        ),
        "sizes": sizes,
        "worker_counts": worker_counts,
        "samples": samples,
        "results": rows,
        "largest_size": largest["chains"],
        "speedup_at_4_workers": largest["latency_leg_speedup"].get("4"),
        "all_models_identical": all(row["models_identical"] for row in rows),
    }


@pytest.mark.experiment("parallel_wfs")
@pytest.mark.parametrize("chains", SMOKE_SIZES)
def test_parallel_models_match_serial(chains):
    """Every worker count must reproduce the serial model bit-identically."""
    program = wide_condensation_program(chains)
    reference = model_fingerprint(well_founded_model(program))
    for workers in (2, 4):
        model = well_founded_model(program, workers=workers, executor="thread")
        assert model_fingerprint(model) == reference


def report(sizes=None, **kwargs) -> dict:
    """Print the scaling table and write ``BENCH_parallel_wfs.json``."""
    data = measure(sizes, **kwargs)
    worker_counts = data["worker_counts"]
    table = ResultTable(
        "Parallel WFS resolve — ready-set scheduling, injected-latency serving leg",
        [
            "chains",
            "rules",
            "components",
            *[f"{w}w (s)" for w in worker_counts],
            *[f"{w}w speedup" for w in worker_counts[1:]],
            "identical",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["chains"],
            row["ground_rules"],
            row["components"],
            *[f"{row['latency_leg_seconds'][str(w)]:.3f}" for w in worker_counts],
            *[
                f"{row['latency_leg_speedup'][str(w)]:.1f}x"
                for w in worker_counts[1:]
            ],
            row["models_identical"],
        )
    table.print()
    headline = data["speedup_at_4_workers"]
    print(
        f"\nlargest size ({data['largest_size']} chains): "
        f"{headline:.1f}x at 4 workers"
        if headline is not None
        else "\n(no 4-worker leg in this run)"
    )
    print(f"all models identical to the serial oracle: {data['all_models_identical']}")
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    argv = sys.argv[1:]
    if argv and argv[0] == "smoke":
        report(SMOKE_SIZES, samples=1)
    else:
        report([int(arg) for arg in argv] or None)
