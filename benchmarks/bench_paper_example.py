"""E1 — the paper's running example (Examples 4, 6, 9).

Reproduces the literal-by-literal content of Example 4/9 (the well-founded
model containing ``P(0,1)``, ``¬Q(1)``, ``¬S(0)`` and the "transfinite"
``T(0)``) and measures how the engine scales when the database contains
additional isomorphic chains.
"""

from __future__ import annotations

import pytest

from repro.core.engine import WellFoundedEngine
from repro.lang.parser import parse_atom
from repro.bench.generators import paper_example_program
from repro.bench.harness import ResultTable, time_call

EXPECTED_LITERALS = {
    "r(0,0,1)": "true",
    "p(0,0)": "true",
    "p(0,1)": "true",
    "q(1)": "false",
    "s(0)": "false",
    "t(0)": "true",
}


def compute_model(extra_chains: int):
    program, database = paper_example_program(extra_chains=extra_chains)
    engine = WellFoundedEngine(program, database)
    return engine.model()


def check_expected(model) -> None:
    for text, value in EXPECTED_LITERALS.items():
        assert model.value(parse_atom(text)) == value, text


@pytest.mark.experiment("E1")
@pytest.mark.parametrize("extra_chains", [0, 4, 16])
def test_paper_example_model(benchmark, extra_chains):
    """Well-founded model of Example 4 with 0/4/16 extra isomorphic chains."""
    model = benchmark.pedantic(
        compute_model, args=(extra_chains,), rounds=3, iterations=1
    )
    check_expected(model)
    assert model.converged


@pytest.mark.experiment("E1")
def test_paper_example_query_answering(benchmark):
    """Answering the NBCQ ``? t(X), not s(X)`` over Example 4."""
    program, database = paper_example_program()
    engine = WellFoundedEngine(program, database)
    engine.model()  # materialise once; the benchmark measures query evaluation

    result = benchmark(lambda: engine.holds("? t(X), not s(X)"))
    assert result is True


def report() -> None:
    """Print the E1 table: expected vs. computed truth values and timings."""
    table = ResultTable(
        "E1 — Example 4/9 of the paper (expected vs computed literals)",
        ["literal", "paper", "computed"],
    )
    model = compute_model(0)
    for text, value in EXPECTED_LITERALS.items():
        table.add_row(text, value, model.value(parse_atom(text)))
    table.print()

    scaling = ResultTable(
        "E1 — scaling with extra isomorphic chains",
        ["extra chains", "chase nodes", "seconds"],
    )
    for extra in (0, 4, 16, 64):
        elapsed = time_call(lambda e=extra: compute_model(e), repeats=3)
        model = compute_model(extra)
        scaling.add_row(extra, len(model.forest()), elapsed)
    scaling.print()


if __name__ == "__main__":
    report()
