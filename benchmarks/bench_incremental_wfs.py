"""Incremental WFS maintenance benchmark — dirty-component re-solve vs. from-scratch.

PR 4 left one cold spot in the deepening loop: although the ground program
and its rule index grow incrementally, `WellFoundedEngine.model` recomputed
the dependency condensation and the full SCC-modular well-founded model from
scratch at every depth step.  This PR adds the incremental fixpoint layer
(`repro.lp.fixpoint.IncrementalCondensation` +
`repro.lp.wfs.IncrementalWFS`): the condensation is maintained under rule
insertion (order-consistent insertions are absorbed without any Tarjan; only
order violations re-run Tarjan on the affected suffix) and only components
the delta touched — plus components whose external inputs changed value —
are re-solved, seeded from the previous depth's component solutions.

The workload mirrors the shape iterative deepening actually produces: a
**layered win/move game**.  Layer ``l`` holds ``width`` positions with random
intra-layer moves (cycles and dead ends — the full true/false/undefined mix)
plus moves down into layer ``l - 1``; each growth step appends one layer's
ground rules (move facts and ``win(x) <- move(x, y), not win(y)`` instances),
so new heads depend on older atoms exactly like new chase levels do.  Both
modes share the identical growth schedule and the identical incremental
`GroundProgram`/`RuleIndex` machinery; the *only* difference is the resolve
call per step:

* **from-scratch** (the baseline this PR replaces): `well_founded_model`
  on the grown program at every step — full condensation + full re-solve;
* **incremental**: `well_founded_model_incremental` threaded through the
  schedule.

Models are checked bit-identical (true/false/undefined sets) at every step.
Running the module directly prints the comparison table and writes
``BENCH_incremental_wfs.json`` at the repository root (uploaded as a CI
artifact; the ROADMAP asks ≥ 3× total deepening-resolve speedup at the
largest size).  Pass explicit widths for a quick smoke run
(``python benchmarks/bench_incremental_wfs.py 8 16``).
"""

from __future__ import annotations

import json
import random
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import ResultTable
from repro.lang.atoms import Atom
from repro.lang.rules import NormalRule
from repro.lang.terms import Constant
from repro.lp.grounding import GroundProgram
from repro.lp.wfs import well_founded_model, well_founded_model_incremental

SMOKE_SIZES = [8, 16]
#: Layer widths for the standalone report; the largest is where the JSON's
#: headline speedup is measured.
REPORT_SIZES = [24, 48, 96]

#: Number of growth steps (layers): the deepening schedule length.
LAYERS = 24

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_incremental_wfs.json"


def layered_win_move(layers: int, width: int, seed: int = 0) -> list[list[NormalRule]]:
    """Per-layer ground-rule chunks of a layered win/move game.

    Positions are ``p{layer}_{i}``; each position gets 0–2 intra-layer moves
    (about a quarter are dead ends) and, from layer 1 up, 1–2 moves into the
    previous layer.  The chunk for a layer contains its move facts plus the
    ground ``win`` rule instances those moves induce — new heads over current-
    and previous-layer atoms, the growth shape of chase deepening.
    """
    rng = random.Random(seed)

    def pos(layer: int, i: int) -> Constant:
        return Constant(f"p{layer}_{i}")

    def chunk_for(layer: int) -> list[NormalRule]:
        rules: list[NormalRule] = []
        for i in range(width):
            targets: set[Constant] = set()
            if rng.random() >= 0.25:
                for _ in range(rng.randint(1, 2)):
                    j = rng.randrange(width)
                    if j != i:
                        targets.add(pos(layer, j))
            if layer > 0:
                for _ in range(rng.randint(1, 2)):
                    targets.add(pos(layer - 1, rng.randrange(width)))
            source = pos(layer, i)
            for target in sorted(targets, key=str):
                move = Atom("move", (source, target))
                rules.append(NormalRule(move))
                rules.append(
                    NormalRule(
                        Atom("win", (source,)),
                        (move,),
                        (Atom("win", (target,)),),
                    )
                )
        return rules

    return [chunk_for(layer) for layer in range(layers)]


def model_fingerprint(model):
    return (model.true_atoms(), model.false_atoms(), model.undefined_atoms())


def _run_scratch(chunks):
    """Grow one program; re-solve from scratch at every step (the old path)."""
    program = GroundProgram()
    seconds = 0.0
    fingerprints = []
    for chunk in chunks:
        program.update(chunk)
        started = time.perf_counter()
        model = well_founded_model(program)
        seconds += time.perf_counter() - started
        fingerprints.append(model_fingerprint(model))
    return seconds, fingerprints


def _run_incremental(chunks):
    """Grow one program; thread the incremental solver through the schedule."""
    program = GroundProgram()
    state = None
    seconds = 0.0
    fingerprints = []
    for chunk in chunks:
        program.update(chunk)
        started = time.perf_counter()
        model, state = well_founded_model_incremental(program, state)
        seconds += time.perf_counter() - started
        fingerprints.append(model_fingerprint(model))
    return seconds, fingerprints, state


@pytest.mark.experiment("incremental_wfs")
@pytest.mark.parametrize("width", SMOKE_SIZES)
def test_incremental_models_match_scratch(width):
    """Both resolve paths must produce bit-identical models at every step."""
    chunks = layered_win_move(8, width)
    _, expected = _run_scratch(chunks)
    _, actual, _ = _run_incremental(chunks)
    assert actual == expected


def measure(sizes=None) -> dict:
    """Compare incremental and from-scratch deepening resolves over growing widths."""
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    rows = []
    for width in sizes:
        chunks = layered_win_move(LAYERS, width)
        scratch_seconds, scratch_models = _run_scratch(chunks)
        incremental_seconds, incremental_models, state = _run_incremental(chunks)
        rows.append(
            {
                "width": width,
                "layers": LAYERS,
                "ground_rules": sum(len(c) for c in chunks),
                "components": len(state.condensation),
                "scratch_seconds": scratch_seconds,
                "incremental_seconds": incremental_seconds,
                "speedup_deepening_resolve": scratch_seconds / incremental_seconds
                if incremental_seconds > 0
                else float("inf"),
                "last_step_resolved": state.last_resolved,
                "last_step_reused": state.last_reused,
                "tarjan_reruns": state.condensation.tarjan_reruns,
                "models_identical": incremental_models == scratch_models,
            }
        )
    largest = rows[-1]
    return {
        "experiment": "incremental_wfs",
        "workload": (
            f"layered_win_move(layers={LAYERS}, width) — one layer of ground "
            "rules per deepening step, resolve-only timings"
        ),
        "sizes": sizes,
        "results": rows,
        "largest_size": largest["width"],
        "largest_size_speedup": largest["speedup_deepening_resolve"],
        "all_models_identical": all(row["models_identical"] for row in rows),
    }


def report(sizes=None) -> dict:
    """Print the comparison table and write ``BENCH_incremental_wfs.json``."""
    data = measure(sizes)
    table = ResultTable(
        "Incremental WFS maintenance — dirty-component re-solve vs. from-scratch per depth",
        [
            "width",
            "rules",
            "components",
            "scratch (s)",
            "incremental (s)",
            "speedup",
            "resolved/reused (last step)",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["width"],
            row["ground_rules"],
            row["components"],
            row["scratch_seconds"],
            row["incremental_seconds"],
            f"{row['speedup_deepening_resolve']:.1f}x",
            f"{row['last_step_resolved']}/{row['last_step_reused']}",
        )
    table.print()
    print(
        f"\nlargest size (width {data['largest_size']}): deepening-resolve "
        f"speedup {data['largest_size_speedup']:.1f}x, models identical: "
        f"{data['all_models_identical']}"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    cli_sizes = [int(arg) for arg in sys.argv[1:]] or None
    report(cli_sizes)
