"""E7 — the classical WFS substrate (Sec. 2.6): polynomial data tractability
and the cost of its two equivalent constructions.

* win/move games of growing size: the WFS is computed with the unfounded-set
  construction (the paper's definition) and with Van Gelder's alternating
  fixpoint; the two must agree, and the table reports both costs (the
  ablation called out in DESIGN.md Sec. 5);
* a stratified company-hierarchy-style program: the WFS is total and equals
  the perfect model, at comparable cost.
"""

from __future__ import annotations

import pytest

from repro.lp.grounding import relevant_grounding
from repro.lp.stratification import perfect_model
from repro.lp.wfs import well_founded_model, well_founded_model_alternating
from repro.bench.generators import reachability_program, win_move_game
from repro.bench.harness import ResultTable, fit_powerlaw_exponent, time_call

GAME_SIZES = [20, 40, 80, 160]


def ground_game(size: int):
    return relevant_grounding(win_move_game(size, seed=59))


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("size", GAME_SIZES)
def test_wfs_unfounded_set_construction(benchmark, size):
    """lfp(W_P) via greatest unfounded sets on win/move games."""
    ground = ground_game(size)
    model = benchmark.pedantic(well_founded_model, args=(ground,), rounds=2, iterations=1)
    assert model.true_atoms() or model.false_atoms()


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("size", GAME_SIZES)
def test_wfs_alternating_fixpoint_construction(benchmark, size):
    """The same models via Van Gelder's alternating fixpoint."""
    ground = ground_game(size)
    model = benchmark.pedantic(
        well_founded_model_alternating, args=(ground,), rounds=2, iterations=1
    )
    reference = well_founded_model(ground)
    assert model.true_atoms() == reference.true_atoms()
    assert model.false_atoms() == reference.false_atoms()


@pytest.mark.experiment("E7")
def test_stratified_program_perfect_model(benchmark):
    """Perfect model of a stratified program, compared against its WFS."""
    program = reachability_program(80, seed=61)
    ground = relevant_grounding(program)
    perfect = benchmark(lambda: perfect_model(program, ground=ground))
    wfs = well_founded_model(ground)
    assert wfs.true_atoms() == perfect.true_atoms()


def report() -> None:
    """Print the E7 tables (construction ablation + scaling exponent)."""
    table = ResultTable(
        "E7 — classical WFS on win/move games: unfounded sets vs alternating fixpoint",
        ["positions", "ground rules", "unfounded-set (s)", "alternating (s)"],
    )
    sizes, times = [], []
    for size in GAME_SIZES:
        ground = ground_game(size)
        unfounded_seconds = time_call(lambda g=ground: well_founded_model(g), repeats=2)
        alternating_seconds = time_call(
            lambda g=ground: well_founded_model_alternating(g), repeats=2
        )
        table.add_row(size, len(ground), unfounded_seconds, alternating_seconds)
        sizes.append(size)
        times.append(unfounded_seconds)
    table.print()
    print(
        f"\nempirical growth exponent of the unfounded-set construction ~ "
        f"{fit_powerlaw_exponent(sizes, times):.2f} (polynomial, as Sec. 2.6 recalls)"
    )


if __name__ == "__main__":
    report()
