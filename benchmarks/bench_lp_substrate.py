"""E7 — the classical WFS substrate (Sec. 2.6): polynomial data tractability
and the cost of its constructions.

* win/move games of growing size: the WFS is computed three ways — the
  indexed SCC-modular worklist evaluation (the production path), the seed's
  naive ``W_P`` re-scan iteration (retained as the reference), and Van
  Gelder's alternating fixpoint on the rule index; all three must agree, and
  the table reports the costs (the ablation called out in DESIGN.md Sec. 5);
* a stratified company-hierarchy-style program: the WFS is total and equals
  the perfect model, at comparable cost.

Running the module directly prints the full table **and** writes the
machine-readable ``BENCH_lp_substrate.json`` next to the repository root, so
the naive-vs-indexed perf trajectory is tracked across PRs.  Pass explicit
sizes on the command line for a quick smoke run (``python
benchmarks/bench_lp_substrate.py 20 40``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.lp.grounding import relevant_grounding
from repro.lp.stratification import perfect_model
from repro.lp.wfs import (
    well_founded_model,
    well_founded_model_alternating,
    well_founded_model_naive,
)
from repro.bench.generators import reachability_program, win_move_game
from repro.bench.harness import ResultTable, fit_powerlaw_exponent, time_call

GAME_SIZES = [20, 40, 80, 160]
#: Sizes used by the standalone report; the largest one is where the JSON's
#: headline naive-vs-indexed speedup is measured.
REPORT_SIZES = [40, 80, 160, 320, 640, 1280]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_lp_substrate.json"


def ground_game(size: int):
    return relevant_grounding(win_move_game(size, seed=59))


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("size", GAME_SIZES)
def test_wfs_indexed_scc_construction(benchmark, size):
    """The SCC-modular worklist evaluation on win/move games."""
    ground = ground_game(size)
    ground.index()  # build the rule index outside the timed region
    model = benchmark.pedantic(well_founded_model, args=(ground,), rounds=2, iterations=1)
    assert model.true_atoms() or model.false_atoms()


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("size", GAME_SIZES)
def test_wfs_naive_reference_construction(benchmark, size):
    """The seed's whole-program ``W_P`` re-scan, retained as the reference."""
    ground = ground_game(size)
    model = benchmark.pedantic(
        well_founded_model_naive, args=(ground,), rounds=2, iterations=1
    )
    reference = well_founded_model(ground)
    assert model.true_atoms() == reference.true_atoms()
    assert model.false_atoms() == reference.false_atoms()


@pytest.mark.experiment("E7")
@pytest.mark.parametrize("size", GAME_SIZES)
def test_wfs_alternating_fixpoint_construction(benchmark, size):
    """The same models via Van Gelder's alternating fixpoint."""
    ground = ground_game(size)
    ground.index()
    model = benchmark.pedantic(
        well_founded_model_alternating, args=(ground,), rounds=2, iterations=1
    )
    reference = well_founded_model(ground)
    assert model.true_atoms() == reference.true_atoms()
    assert model.false_atoms() == reference.false_atoms()


@pytest.mark.experiment("E7")
def test_stratified_program_perfect_model(benchmark):
    """Perfect model of a stratified program, compared against its WFS."""
    program = reachability_program(80, seed=61)
    ground = relevant_grounding(program)
    perfect = benchmark(lambda: perfect_model(program, ground=ground))
    wfs = well_founded_model(ground)
    assert wfs.true_atoms() == perfect.true_atoms()


def measure(sizes=None, *, repeats: int = 3) -> dict:
    """Time the three WFS constructions over win/move games of the given sizes.

    Returns the JSON-ready result dictionary (also see :func:`report`, which
    prints the table and persists the dictionary to ``BENCH_lp_substrate.json``).
    """
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    rows = []
    for size in sizes:
        ground = ground_game(size)
        ground.index()
        indexed_seconds = time_call(lambda g=ground: well_founded_model(g), repeats=repeats)
        naive_seconds = time_call(
            lambda g=ground: well_founded_model_naive(g), repeats=repeats
        )
        alternating_seconds = time_call(
            lambda g=ground: well_founded_model_alternating(g), repeats=repeats
        )
        rows.append(
            {
                "positions": size,
                "ground_rules": len(ground),
                "atoms": len(ground.atoms()),
                "indexed_seconds": indexed_seconds,
                "naive_seconds": naive_seconds,
                "alternating_seconds": alternating_seconds,
                "speedup_naive_over_indexed": naive_seconds / indexed_seconds
                if indexed_seconds > 0
                else float("inf"),
            }
        )
    largest = rows[-1]
    return {
        "experiment": "lp_substrate",
        "workload": "win_move_game(seed=59)",
        "sizes": sizes,
        "results": rows,
        "largest_size": largest["positions"],
        "largest_size_speedup_naive_over_indexed": largest["speedup_naive_over_indexed"],
        "indexed_growth_exponent": fit_powerlaw_exponent(
            [r["positions"] for r in rows], [r["indexed_seconds"] for r in rows]
        ),
        "naive_growth_exponent": fit_powerlaw_exponent(
            [r["positions"] for r in rows], [r["naive_seconds"] for r in rows]
        ),
    }


def report(sizes=None) -> dict:
    """Print the E7 tables and write ``BENCH_lp_substrate.json``."""
    data = measure(sizes)
    table = ResultTable(
        "E7 — classical WFS on win/move games: indexed SCC worklist vs naive W_P vs alternating",
        ["positions", "ground rules", "indexed (s)", "naive (s)", "alternating (s)", "speedup"],
    )
    for row in data["results"]:
        table.add_row(
            row["positions"],
            row["ground_rules"],
            row["indexed_seconds"],
            row["naive_seconds"],
            row["alternating_seconds"],
            f"{row['speedup_naive_over_indexed']:.1f}x",
        )
    table.print()
    print(
        f"\nempirical growth exponents: indexed ~ {data['indexed_growth_exponent']:.2f}, "
        f"naive ~ {data['naive_growth_exponent']:.2f} (polynomial, as Sec. 2.6 recalls)"
    )
    print(
        f"largest size ({data['largest_size']} positions): naive/indexed speedup "
        f"{data['largest_size_speedup_naive_over_indexed']:.1f}x"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    cli_sizes = [int(arg) for arg in sys.argv[1:]] or None
    report(cli_sizes)
