"""E6 — locality (Proposition 12): answers stabilise at a tiny chase depth
compared with the theoretical bound n·δ.

For each workload the table reports the depth at which the engine's
type-repetition test fired (i.e. the chase depth actually needed), the size of
the materialised segment, and the theoretical worst-case bound of Prop. 12 for
a one-literal query — which is astronomically larger.  This is the ablation
for the engine's central design choice (DESIGN.md Sec. 5).
"""

from __future__ import annotations

import pytest

from repro.core.engine import WellFoundedEngine
from repro.core.locality import delta_bound
from repro.lang.parser import parse_query
from repro.bench.generators import (
    employment_workload,
    paper_example_program,
    win_move_datalog_pm,
)
from repro.bench.harness import ResultTable

WORKLOADS = {
    "paper example 4": lambda: paper_example_program(),
    "employment (40 persons)": lambda: employment_workload(40, seed=53),
    "win/move (30 positions)": lambda: win_move_datalog_pm(30, seed=53),
}


def converge(workload_name: str):
    program, database = WORKLOADS[workload_name]()
    engine = WellFoundedEngine(program, database)
    model = engine.model()
    return engine, model


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_stabilisation_depth_is_small(benchmark, workload_name):
    """The engine stabilises at a depth orders of magnitude below n·δ."""
    engine, model = benchmark.pedantic(converge, args=(workload_name,), rounds=2, iterations=1)
    assert model.converged
    assert model.depth <= 9
    assert model.depth < delta_bound(engine.program.schema(engine.database))


@pytest.mark.experiment("E6")
@pytest.mark.parametrize("query_size", [1, 2, 3])
def test_query_depth_bound_grows_linearly_in_the_query(benchmark, query_size):
    """Prop. 12's bound n·δ is linear in the number of query literals."""
    program, database = paper_example_program()
    engine = WellFoundedEngine(program, database)
    literals = ["t(X)", "not s(X)", "p(X, Y)"][:query_size]
    query = parse_query("? " + ", ".join(literals))

    bound = benchmark(lambda: engine.query_depth_bound(query))
    assert bound == query_size * engine.delta()


def report() -> None:
    """Print the E6 table: stabilisation depth vs the theoretical bound."""
    table = ResultTable(
        "E6 — locality: actual stabilisation depth vs Prop. 12's worst-case bound",
        ["workload", "depth used", "chase nodes", "delta (1-literal bound)"],
    )
    for name in sorted(WORKLOADS):
        engine, model = converge(name)
        delta = delta_bound(engine.program.schema(engine.database))
        # delta can exceed float range (it is doubly exponential), so render it
        # as a power of ten from its decimal length instead of converting.
        shown = str(delta) if delta < 10**6 else f"~1e{len(str(delta)) - 1}"
        table.add_row(name, model.depth, len(model.forest()), shown)
    table.print()


if __name__ == "__main__":
    report()
