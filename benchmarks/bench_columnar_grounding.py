"""Columnar-grounding benchmark — bulk delta joins vs. the tuple matcher.

A large-EDB reachability/ontology workload
(:func:`repro.bench.generators.large_edb_reachability`) scaled by the number
of database facts: a small deterministic core is reachable from the source
while the bulk of the database is background edges and node facts the
derivation never touches.  For every size the benchmark runs the semi-naive
relevant grounding once per backend — the per-candidate ``tuple`` matcher
(the differential oracle), the pure-Python ``columnar`` hash-join backend and
the in-memory ``sqlite`` variant — checks that the resulting ground programs
are *set-identical* (same rules modulo insertion order) with identical
well-founded models, and records the cold wall-clock times.

Running the module directly prints the comparison table **and** writes the
machine-readable ``BENCH_columnar_grounding.json`` next to the repository
root, so the backend trajectory is tracked across PRs (the ROADMAP's
BENCH-trajectory item).  Pass explicit fact counts on the command line for a
quick smoke run (``python benchmarks/bench_columnar_grounding.py 2000``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.bench.generators import large_edb_reachability
from repro.bench.harness import ResultTable
from repro.lp.columnar import BACKENDS, make_grounder
from repro.lp.wfs import well_founded_model

#: Length of the reachable chain; the tuple matcher re-scans the full edge
#: extension on every one of these deepening rounds, the columnar backends
#: only probe their hash (or sqlite) indexes.
CORE_SIZE = 128

SMOKE_SIZES = [2000, 5000]
#: EDB fact counts for the standalone report; the largest is where the JSON's
#: headline speedup is measured (the ISSUE's >= 1e5-fact regime).
REPORT_SIZES = [10_000, 30_000, 100_000]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar_grounding.json"


def _timed_grounding(program, edb, backend: str, *, repeats: int):
    """Median cold grounding time plus the last run's grounder."""
    samples = []
    grounder = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        grounder = make_grounder(program, edb, backend=backend)
        grounder.run()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2], grounder


@pytest.mark.experiment("columnar")
@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_grounding(benchmark, backend):
    """Cold semi-naive grounding of the large-EDB workload, per backend."""
    program, edb = large_edb_reachability(SMOKE_SIZES[0], core_size=CORE_SIZE)

    def run():
        grounder = make_grounder(program, edb, backend=backend)
        grounder.run()
        return grounder

    assert benchmark.pedantic(run, rounds=2, iterations=1).saturated


@pytest.mark.experiment("columnar")
@pytest.mark.parametrize("facts_count", SMOKE_SIZES)
def test_backends_agree(facts_count):
    """All backends must produce set-identical ground programs and models."""
    program, edb = large_edb_reachability(facts_count, core_size=CORE_SIZE)
    grounders = {}
    for backend in BACKENDS:
        grounders[backend] = make_grounder(program, edb, backend=backend)
        grounders[backend].run()
    oracle = set(grounders["tuple"].ground)
    oracle_model = well_founded_model(grounders["tuple"].ground)
    for backend in ("columnar", "sqlite"):
        assert set(grounders[backend].ground) == oracle, backend
        assert well_founded_model(grounders[backend].ground) == oracle_model, backend


def measure(sizes=None, *, repeats: int = 3) -> dict:
    """Compare the grounding backends over a growing EDB.

    Each measurement is *cold*: grounder construction (term interning, index
    building) and the full semi-naive run both happen inside the timed
    region.  The slow tuple runs above 20k facts are timed once instead of
    ``repeats`` times.  Returns the JSON-ready dictionary (see
    :func:`report`).
    """
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    rows = []
    for facts_count in sizes:
        program, edb = large_edb_reachability(facts_count, core_size=CORE_SIZE)

        seconds = {}
        grounders = {}
        for backend in BACKENDS:
            backend_repeats = 1 if backend == "tuple" and facts_count > 20_000 else repeats
            seconds[backend], grounders[backend] = _timed_grounding(
                program, edb, backend, repeats=backend_repeats
            )

        oracle_rules = set(grounders["tuple"].ground)
        rules_equal = all(
            set(grounders[b].ground) == oracle_rules for b in ("columnar", "sqlite")
        )
        oracle_model = well_founded_model(grounders["tuple"].ground)
        models_equal = all(
            well_founded_model(grounders[b].ground) == oracle_model
            for b in ("columnar", "sqlite")
        )

        rows.append(
            {
                "db_facts": len(edb),
                "core_size": CORE_SIZE,
                "ground_rules": len(grounders["tuple"].ground),
                "rounds": grounders["columnar"].rounds,
                "tuple_seconds": seconds["tuple"],
                "columnar_seconds": seconds["columnar"],
                "sqlite_seconds": seconds["sqlite"],
                "speedup_columnar": seconds["tuple"] / seconds["columnar"]
                if seconds["columnar"] > 0
                else float("inf"),
                "speedup_sqlite": seconds["tuple"] / seconds["sqlite"]
                if seconds["sqlite"] > 0
                else float("inf"),
                "ground_rules_equal": rules_equal,
                "models_equal": models_equal,
            }
        )
    largest = rows[-1]
    return {
        "experiment": "columnar_grounding",
        "workload": f"large_edb_reachability(facts, core_size={CORE_SIZE})",
        "backends": list(BACKENDS),
        "sizes": sizes,
        "results": rows,
        "largest_size": largest["db_facts"],
        "largest_size_speedup_columnar": largest["speedup_columnar"],
        "largest_size_speedup_sqlite": largest["speedup_sqlite"],
        "all_ground_rules_equal": all(row["ground_rules_equal"] for row in rows),
        "all_models_equal": all(row["models_equal"] for row in rows),
    }


def report(sizes=None) -> dict:
    """Print the comparison table and write ``BENCH_columnar_grounding.json``."""
    data = measure(sizes)
    table = ResultTable(
        "Columnar grounding — bulk delta joins vs. the per-candidate tuple matcher",
        [
            "facts",
            "ground rules",
            "tuple (s)",
            "columnar (s)",
            "sqlite (s)",
            "speedup col",
            "speedup sql",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["db_facts"],
            row["ground_rules"],
            row["tuple_seconds"],
            row["columnar_seconds"],
            row["sqlite_seconds"],
            f"{row['speedup_columnar']:.1f}x",
            f"{row['speedup_sqlite']:.1f}x",
        )
    table.print()
    print(
        f"\nlargest size ({data['largest_size']} facts): columnar speedup "
        f"{data['largest_size_speedup_columnar']:.1f}x, sqlite speedup "
        f"{data['largest_size_speedup_sqlite']:.1f}x, ground programs equal: "
        f"{data['all_ground_rules_equal']}, models equal: {data['all_models_equal']}"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    cli_sizes = [int(arg) for arg in sys.argv[1:]] or None
    report(cli_sizes)
