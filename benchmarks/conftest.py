"""Shared configuration for the benchmark suite.

Every benchmark module reproduces one experiment of DESIGN.md (E1–E7).  The
modules are ordinary pytest files using the ``benchmark`` fixture of
pytest-benchmark; run them with::

    pytest benchmarks/ --benchmark-only

Each module can also be executed directly (``python benchmarks/bench_xxx.py``)
to print the full result table of its experiment, including derived numbers
such as the empirical scaling exponent; those tables are what EXPERIMENTS.md
records.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Group benchmarks by their experiment for a readable report.
    config.addinivalue_line("markers", "experiment(id): the DESIGN.md experiment an item belongs to")
