"""Agenda-based chase saturation benchmark — incremental worklist vs. re-scan.

PR 3 left the chase engine's saturation loop round-based: every round
re-scanned every forest node against every rule, O(nodes × rules) per round
even with the decided-pair memo, which dominated first-run and deepening cost
on the paper's guarded-chase fragment.  This PR replaces it with a
Dowling–Gallier-style agenda (``saturation="agenda"``, the default): new
nodes enter a worklist, blocked (node, rule) pairs watch their first missing
side atom, and each pair is considered once instead of once per round.  The
historical loop is retained verbatim as ``saturation="scan"`` and is the
baseline here.

The workload is the deep, wide program of :mod:`bench_chase_cache`
(existential descent plus side-gated rules that fire only near the first
root): its chase runs one round per depth level, so the round-based scan
re-visits every node ``O(depth)`` times while the agenda visits it once.
Two scenarios per size, with the segment cache **off** in both (this
benchmark isolates raw saturation; the cache is ``bench_chase_cache``'s
subject):

* **first-run saturation** (the headline ``largest_size_speedup``): one
  fresh chase engine expanded straight to the target depth;
* **deepening** (``largest_size_speedup_deepening``): one engine stepped
  through an iterative-deepening schedule to the same depth, the
  :class:`repro.core.engine.WellFoundedEngine` usage pattern.

Forests are checked to be bit-identical between the modes (labels, parents,
edge rules and canonical levels) via a canonical node signature.  Running the
module directly prints the comparison table and writes the machine-readable
``BENCH_chase_agenda.json`` at the repository root (uploaded as a CI
artifact; ROADMAP's BENCH trajectory asks ≥ 3× at the largest size).  Pass
explicit depths for a quick smoke run
(``python benchmarks/bench_chase_agenda.py 12``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import ResultTable
from repro.chase.engine import GuardedChaseEngine
from repro.lang.skolem import skolemize_program

from bench_chase_cache import deep_type_workload

SMOKE_SIZES = [8, 12]
#: Chase depths for the standalone report; the largest is where the JSON's
#: headline speedup is measured.
REPORT_SIZES = [32, 48, 64]

#: Deepening schedule factor: the deepening scenario expands at 3, 5, 9, …
#: up to the target depth (initial_depth=3, depth_step doubling-ish).
DEEPENING_STEPS = (3, 5, 9, 17, 33)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_chase_agenda.json"


def forest_signature(forest) -> frozenset:
    """Canonical identity of a forest: nodes keyed by root label + rule path."""
    entries = []
    for node in forest.nodes():
        path = []
        current = node
        while current.parent is not None:
            path.append(current.edge_rule)
            current = forest.node(current.parent)
        entries.append(
            (current.label, tuple(reversed(path)), node.label, node.depth, node.level)
        )
    return frozenset(entries)


def _first_run(skolemized, database, depth: int, saturation: str):
    """One fresh chase engine, expanded straight to *depth* (cache off)."""
    engine = GuardedChaseEngine(
        skolemized, database, saturation=saturation, segment_cache=False
    )
    started = time.perf_counter()
    engine.expand(depth)
    return time.perf_counter() - started, engine.forest


def _deepening(skolemized, database, depth: int, saturation: str):
    """One engine stepped through the deepening schedule up to *depth*."""
    engine = GuardedChaseEngine(
        skolemized, database, saturation=saturation, segment_cache=False
    )
    schedule = [step for step in DEEPENING_STEPS if step < depth] + [depth]
    started = time.perf_counter()
    for step in schedule:
        engine.expand(step)
    return time.perf_counter() - started, engine.forest


@pytest.mark.experiment("chase_agenda")
@pytest.mark.parametrize("depth", SMOKE_SIZES)
def test_agenda_forest_matches_scan(depth):
    """Both saturation modes must build bit-identical forests."""
    program, database = deep_type_workload(depth, gated=4)
    skolemized = skolemize_program(program)
    _, agenda = _first_run(skolemized, database, depth, "agenda")
    _, scan = _first_run(skolemized, database, depth, "scan")
    assert forest_signature(agenda) == forest_signature(scan)


@pytest.mark.experiment("chase_agenda")
@pytest.mark.parametrize("depth", SMOKE_SIZES)
def test_agenda_deepening_matches_scan(depth):
    program, database = deep_type_workload(depth, gated=4)
    skolemized = skolemize_program(program)
    _, agenda = _deepening(skolemized, database, depth, "agenda")
    _, scan = _first_run(skolemized, database, depth, "scan")
    assert forest_signature(agenda) == forest_signature(scan)


def measure(sizes=None) -> dict:
    """Compare agenda and scan saturation over growing chase depths."""
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    rows = []
    for depth in sizes:
        program, database = deep_type_workload(depth)
        skolemized = skolemize_program(program)

        scan_seconds, scan_forest = _first_run(skolemized, database, depth, "scan")
        agenda_seconds, agenda_forest = _first_run(
            skolemized, database, depth, "agenda"
        )
        identical = forest_signature(agenda_forest) == forest_signature(scan_forest)

        deep_scan_seconds, deep_scan_forest = _deepening(
            skolemized, database, depth, "scan"
        )
        deep_agenda_seconds, deep_agenda_forest = _deepening(
            skolemized, database, depth, "agenda"
        )
        identical = identical and (
            forest_signature(deep_agenda_forest) == forest_signature(deep_scan_forest)
        )

        rows.append(
            {
                "depth": depth,
                "nodes": len(agenda_forest),
                "rules": len(program),
                "scan_seconds": scan_seconds,
                "agenda_seconds": agenda_seconds,
                "speedup_first_run": scan_seconds / agenda_seconds
                if agenda_seconds > 0
                else float("inf"),
                "deepening_scan_seconds": deep_scan_seconds,
                "deepening_agenda_seconds": deep_agenda_seconds,
                "speedup_deepening": deep_scan_seconds / deep_agenda_seconds
                if deep_agenda_seconds > 0
                else float("inf"),
                "forests_identical": identical,
            }
        )
    largest = rows[-1]
    return {
        "experiment": "chase_agenda",
        "workload": "deep_type_workload(depth) [bench_chase_cache], segment cache off",
        "sizes": sizes,
        "results": rows,
        "largest_size": largest["depth"],
        "largest_size_speedup": largest["speedup_first_run"],
        "largest_size_speedup_deepening": largest["speedup_deepening"],
        "all_forests_identical": all(row["forests_identical"] for row in rows),
    }


def report(sizes=None) -> dict:
    """Print the comparison table and write ``BENCH_chase_agenda.json``."""
    data = measure(sizes)
    table = ResultTable(
        "Agenda-based chase saturation — incremental worklist vs. round-based re-scan",
        [
            "depth",
            "nodes",
            "scan (s)",
            "agenda (s)",
            "speedup",
            "deepen scan (s)",
            "deepen agenda (s)",
            "speedup",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["depth"],
            row["nodes"],
            row["scan_seconds"],
            row["agenda_seconds"],
            f"{row['speedup_first_run']:.1f}x",
            row["deepening_scan_seconds"],
            row["deepening_agenda_seconds"],
            f"{row['speedup_deepening']:.1f}x",
        )
    table.print()
    print(
        f"\nlargest size (depth {data['largest_size']}): first-run speedup "
        f"{data['largest_size_speedup']:.1f}x, deepening speedup "
        f"{data['largest_size_speedup_deepening']:.1f}x, forests identical: "
        f"{data['all_forests_identical']}"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    cli_sizes = [int(arg) for arg in sys.argv[1:]] or None
    report(cli_sizes)
