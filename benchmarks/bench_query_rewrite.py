"""Query-rewriting benchmark — magic-sets vs. classic bottom-up answering.

Disjoint reachability chains (:func:`repro.bench.generators.chain_reachability_workload`)
scaled by the number of chains; a query about the last node of chain 0 is
*selective*: only one chain is relevant to it.  For every size the benchmark
answers the query twice through :class:`~repro.core.engine.WellFoundedEngine` —
classic bottom-up (chase segment + full WFS) and goal-directed
(``rewrite=True``, magic-restricted grounding) — checks that the answers are
identical, and records the ground-program sizes and cold wall-clock times.

Running the module directly prints the comparison table **and** writes the
machine-readable ``BENCH_query_rewrite.json`` next to the repository root, so
the rewritten-vs-unrewritten trajectory is tracked across PRs (the ROADMAP's
BENCH-trajectory item).  Pass explicit chain counts on the command line for a
quick smoke run (``python benchmarks/bench_query_rewrite.py 2 3``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.bench.generators import chain_reachability_workload
from repro.bench.harness import ResultTable, time_call
from repro.core.engine import WellFoundedEngine

#: Edges per chain; the selective query targets the last node of chain 0.
CHAIN_LENGTH = 12

SMOKE_SIZES = [2, 4]
#: Chain counts for the standalone report; the largest is where the JSON's
#: headline reduction/speedup is measured.
REPORT_SIZES = [2, 4, 8, 16]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_query_rewrite.json"


def _workload(chains: int):
    program, database = chain_reachability_workload(chains, CHAIN_LENGTH)
    positive = f"? reach(c0_{CHAIN_LENGTH})"
    negated = f"? node(c0_{CHAIN_LENGTH}), not reach(c0_{CHAIN_LENGTH})"
    return program, database, positive, negated


@pytest.mark.experiment("rewrite")
@pytest.mark.parametrize("chains", SMOKE_SIZES)
def test_classic_query_answering(benchmark, chains):
    """Classic bottom-up answering (full chase segment + full WFS)."""
    program, database, positive, _ = _workload(chains)

    def run():
        return WellFoundedEngine(program, database).holds(positive)

    assert benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.experiment("rewrite")
@pytest.mark.parametrize("chains", SMOKE_SIZES)
def test_rewritten_query_answering(benchmark, chains):
    """Goal-directed answering through the magic-sets rewriting."""
    program, database, positive, _ = _workload(chains)

    def run():
        return WellFoundedEngine(program, database).holds(positive, rewrite=True)

    assert benchmark.pedantic(run, rounds=2, iterations=1)


@pytest.mark.experiment("rewrite")
@pytest.mark.parametrize("chains", SMOKE_SIZES)
def test_rewritten_answers_match_classic(chains):
    """Rewritten answers must be bit-identical to unrewritten answers."""
    program, database, positive, negated = _workload(chains)
    engine = WellFoundedEngine(program, database)
    for query in (positive, negated, "? reach(X)", f"? unreachable(c1_{CHAIN_LENGTH})"):
        assert engine.holds(query) == engine.holds(query, rewrite=True), query
    assert engine.answer("? reach(X)") == engine.answer("? reach(X)", rewrite=True)


def measure(sizes=None, *, repeats: int = 3) -> dict:
    """Compare classic and rewritten answering over growing chain counts.

    Each measurement is *cold*: engine construction, grounding and model
    computation all happen inside the timed region, because the point of the
    rewriting is to avoid materialising state a single query never needs.
    Returns the JSON-ready dictionary (see :func:`report`).
    """
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    rows = []
    for chains in sizes:
        program, database, positive, negated = _workload(chains)

        classic_seconds = time_call(
            lambda: WellFoundedEngine(program, database).holds(positive),
            repeats=repeats,
        )
        rewritten_seconds = time_call(
            lambda: WellFoundedEngine(program, database).holds(positive, rewrite=True),
            repeats=repeats,
        )

        probe = WellFoundedEngine(program, database)
        classic_answer = probe.holds(positive)
        classic_ground = len(probe.ground_program())
        rewritten_answer = probe.holds(positive, rewrite=True)
        stats = probe.last_query_stats
        answers_equal = classic_answer == rewritten_answer and (
            probe.holds(negated) == probe.holds(negated, rewrite=True)
        )

        # A multi-pattern probe reaching both reach^f and reach^b: adornment
        # subsumption folds the bound copy into the free one, so the magic
        # program carries one set of reach rules instead of two.
        multi = f"? reach(X), reach(c0_{CHAIN_LENGTH})"
        multi_equal = probe.holds(multi) == probe.holds(multi, rewrite=True)
        multi_stats = probe.last_query_stats
        answers_equal = answers_equal and multi_equal

        rows.append(
            {
                "chains": chains,
                "chain_length": CHAIN_LENGTH,
                "db_facts": len(database),
                "folded_adornments": multi_stats.get("folded_adornments", 0),
                "multi_query_magic_rules": multi_stats.get("magic_rules", 0),
                "classic_ground_rules": classic_ground,
                "rewritten_ground_rules": stats["ground_rules"],
                "reduction_ground_rules": classic_ground / stats["ground_rules"]
                if stats["ground_rules"]
                else float("inf"),
                "classic_seconds": classic_seconds,
                "rewritten_seconds": rewritten_seconds,
                "speedup_classic_over_rewritten": classic_seconds / rewritten_seconds
                if rewritten_seconds > 0
                else float("inf"),
                "mode": stats["mode"],
                "answers_equal": answers_equal,
            }
        )
    largest = rows[-1]
    return {
        "experiment": "query_rewrite",
        "workload": f"chain_reachability_workload(chains, {CHAIN_LENGTH})",
        "query": f"? reach(c0_{CHAIN_LENGTH})",
        "sizes": sizes,
        "results": rows,
        "largest_size": largest["chains"],
        "largest_size_reduction_ground_rules": largest["reduction_ground_rules"],
        "largest_size_speedup": largest["speedup_classic_over_rewritten"],
        "largest_size_folded_adornments": largest["folded_adornments"],
        "all_answers_equal": all(row["answers_equal"] for row in rows),
    }


def report(sizes=None) -> dict:
    """Print the comparison table and write ``BENCH_query_rewrite.json``."""
    data = measure(sizes)
    table = ResultTable(
        "Query rewriting — magic-restricted vs. full grounding on selective queries",
        [
            "chains",
            "classic rules",
            "rewritten rules",
            "reduction",
            "classic (s)",
            "rewritten (s)",
            "speedup",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["chains"],
            row["classic_ground_rules"],
            row["rewritten_ground_rules"],
            f"{row['reduction_ground_rules']:.1f}x",
            row["classic_seconds"],
            row["rewritten_seconds"],
            f"{row['speedup_classic_over_rewritten']:.1f}x",
        )
    table.print()
    print(
        f"\nlargest size ({data['largest_size']} chains): ground-rule reduction "
        f"{data['largest_size_reduction_ground_rules']:.1f}x, wall-clock speedup "
        f"{data['largest_size_speedup']:.1f}x, answers equal: {data['all_answers_equal']}"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    cli_sizes = [int(arg) for arg in sys.argv[1:]] or None
    report(cli_sizes)
