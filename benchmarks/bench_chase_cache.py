"""Chase-segment cache benchmark — splicing memoized subtrees vs. re-deriving.

The workload is an ontology-shaped program whose chase is *deep* and whose
rule set is *wide*:

* a two-rule existential descent (``e(X) -> exists Y n(X, Y)``,
  ``n(X, Y) -> e(Y)``) drives every root fact down to the depth bound, with a
  negative feedback pair (``live``/``stop``) so the well-founded model keeps
  all three truth values in play;
* ``gated`` side-condition rules (``n(X, Y), probe_k(X) -> hit_k(Y)``) fire
  only near the *first* root, where ``probe_k`` holds — everywhere else their
  side atom never materialises, so the uncached engine pays a guard match and
  a failed side-atom check per gated rule on every single node, which is
  exactly the re-derivation work Lemma 11 says is unnecessary for repeated
  atom types (a cached engine splices those nodes without consulting the
  rules at all).  The width (``GATED_RULES``) mirrors the wide TBoxes of
  ontological workloads — the regime the segment cache targets now that
  agenda-based saturation has removed the per-round re-scans that dominated
  before.

For every size the benchmark runs the *same repeated workload* twice — a
sequence of freshly constructed engines over the same program/database, each
computing its model and answering a query, the pattern produced by the
:mod:`repro.core.answering` engine LRU on recurring (program, database) pairs
— once with the segment cache off and once with it on (stores cleared first,
so the first cached engine pays for recording).  A secondary scenario runs a
single engine through full iterative deepening from depth 3.  Answers are
checked to be identical between modes in both scenarios.

Running the module directly prints the comparison table and writes the
machine-readable ``BENCH_chase_cache.json`` at the repository root (uploaded
as a CI artifact; the ROADMAP's BENCH-trajectory item).  Pass explicit depths
for a quick smoke run (``python benchmarks/bench_chase_cache.py 12``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

from repro.bench.harness import ResultTable
from repro.chase.segments import clear_segment_stores, segment_store_info
from repro.core.engine import WellFoundedEngine
from repro.lang.atoms import Atom
from repro.lang.program import Database, DatalogPMProgram
from repro.lang.rules import NTGD
from repro.lang.terms import Constant, Variable

#: Side-condition rules that only fire near the first root.
GATED_RULES = 192
#: Fresh engines per repeated-workload series.  Chosen so the first (cold,
#: store-recording) engine is well amortised: the headline measures the
#: steady state of a recurring workload, not the cold start.
REPEATS = 12

SMOKE_SIZES = [8, 12]
#: Chase depths for the standalone report; the largest is where the JSON's
#: headline speedup is measured.
REPORT_SIZES = [32, 48, 64]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_chase_cache.json"


def deep_type_workload(
    depth: int, *, gated: int = GATED_RULES
) -> tuple[DatalogPMProgram, Database]:
    """The benchmark program and database for a given chase depth.

    The number of root facts scales with the depth (``max(2, depth // 4)``)
    so forests grow in both dimensions.  From depth two on, every chain's
    atoms have the same canonical shape (all-null arguments), so the segment
    cache collapses the entire descent into splices.  The ``probe_k`` side
    atoms hold of the first root only: the gated rules stay *checkable*
    everywhere but *fire* almost nowhere, which keeps the uncached matching
    burden proportional to ``nodes × gated`` while the materialised forest
    (and hence the shared WFS cost) stays lean.
    """
    x, y = Variable("X"), Variable("Y")
    rules = [
        NTGD((Atom("e", (x,)),), Atom("n", (x, y)), label="spawn"),
        NTGD((Atom("n", (x, y)),), Atom("e", (y,)), label="descend"),
        NTGD((Atom("n", (x, y)),), Atom("live", (x,)), (Atom("stop", (y,)),), label="live"),
        NTGD((Atom("e", (x,)),), Atom("stop", (x,)), (Atom("live", (x,)),), label="stopper"),
    ]
    for k in range(gated):
        rules.append(
            NTGD(
                (Atom("n", (x, y)), Atom(f"probe{k}", (x,))),
                Atom(f"hit{k}", (y,)),
                label=f"gate{k}",
            )
        )
    facts = []
    for i in range(max(2, depth // 4)):
        facts.append(Atom("e", (Constant(f"c{i}"),)))
    for k in range(gated):
        facts.append(Atom(f"probe{k}", (Constant("c0"),)))
    return DatalogPMProgram(rules), Database(facts)


QUERY = "? live(c0)"


def _model_signature(engine: WellFoundedEngine):
    """Everything answer-relevant about an engine's model, for equality checks."""
    model = engine.model()
    return (
        frozenset(model.true_atoms()),
        frozenset(model.false_atoms()),
        frozenset(model.undefined_atoms()),
        engine.holds(QUERY),
        model.depth,
        model.converged,
    )


def _run_repeated(program, database, depth: int, *, segment_cache: bool, repeats: int):
    """Build *repeats* fresh single-shot engines; return (seconds, signature)."""
    clear_segment_stores()
    signature = None
    started = time.perf_counter()
    for _ in range(repeats):
        engine = WellFoundedEngine(
            program,
            database,
            initial_depth=depth,
            max_depth=depth,
            segment_cache=segment_cache,
        )
        signature = _model_signature(engine)
    return time.perf_counter() - started, signature


def _run_deepening(program, database, depth: int, *, segment_cache: bool):
    """One engine, full iterative deepening from 3; return (seconds, signature)."""
    clear_segment_stores()
    started = time.perf_counter()
    engine = WellFoundedEngine(
        program,
        database,
        initial_depth=3,
        depth_step=2,
        max_depth=depth,
        segment_cache=segment_cache,
    )
    signature = _model_signature(engine)
    return time.perf_counter() - started, signature


@pytest.mark.experiment("chase_cache")
@pytest.mark.parametrize("depth", SMOKE_SIZES)
def test_cached_answers_match_uncached(depth):
    """Cached and uncached engines must produce bit-identical models/answers."""
    program, database = deep_type_workload(depth, gated=4)
    _, cached = _run_repeated(program, database, depth, segment_cache=True, repeats=2)
    _, uncached = _run_repeated(program, database, depth, segment_cache=False, repeats=1)
    assert cached == uncached


@pytest.mark.experiment("chase_cache")
@pytest.mark.parametrize("depth", SMOKE_SIZES)
def test_warm_engine_splices(depth):
    """A fresh engine over a warm store derives (almost) nothing itself."""
    program, database = deep_type_workload(depth, gated=4)
    clear_segment_stores()
    WellFoundedEngine(
        program, database, initial_depth=depth, max_depth=depth, segment_cache=True
    ).model()
    warm = WellFoundedEngine(
        program, database, initial_depth=depth, max_depth=depth, segment_cache=True
    )
    warm.model()
    stats = warm.segment_cache_stats()
    assert stats["nodes_spliced"] > 0
    assert stats["segments_recorded"] == 0  # the store already knew every type


def measure(sizes=None, *, repeats: int = REPEATS) -> dict:
    """Compare cache-on and cache-off over growing chase depths.

    Returns the JSON-ready dictionary (see :func:`report`).  Each row holds
    both scenarios: ``repeated`` (the headline — *repeats* fresh engines over
    the same inputs) and ``deepening`` (one engine, full iterative deepening).
    """
    sizes = list(sizes) if sizes else list(REPORT_SIZES)
    rows = []
    for depth in sizes:
        program, database = deep_type_workload(depth)

        off_seconds, off_signature = _run_repeated(
            program, database, depth, segment_cache=False, repeats=repeats
        )
        on_seconds, on_signature = _run_repeated(
            program, database, depth, segment_cache=True, repeats=repeats
        )
        store = segment_store_info()

        deep_off_seconds, deep_off_signature = _run_deepening(
            program, database, depth, segment_cache=False
        )
        deep_on_seconds, deep_on_signature = _run_deepening(
            program, database, depth, segment_cache=True
        )

        rows.append(
            {
                "depth": depth,
                "roots": max(2, depth // 4),
                "gated_rules": GATED_RULES,
                "repeats": repeats,
                "db_facts": len(database),
                "uncached_seconds": off_seconds,
                "cached_seconds": on_seconds,
                "speedup_repeated": off_seconds / on_seconds if on_seconds > 0 else float("inf"),
                "deepening_uncached_seconds": deep_off_seconds,
                "deepening_cached_seconds": deep_on_seconds,
                "speedup_deepening": deep_off_seconds / deep_on_seconds
                if deep_on_seconds > 0
                else float("inf"),
                "segments": store["segments"],
                "store_hits": store["hits"],
                "answers_equal": off_signature == on_signature
                and deep_off_signature == deep_on_signature,
            }
        )
    largest = rows[-1]
    return {
        "experiment": "chase_cache",
        "workload": f"deep_type_workload(depth, gated={GATED_RULES})",
        "query": QUERY,
        "sizes": sizes,
        "results": rows,
        "largest_size": largest["depth"],
        "largest_size_speedup": largest["speedup_repeated"],
        "largest_size_speedup_deepening": largest["speedup_deepening"],
        "all_answers_equal": all(row["answers_equal"] for row in rows),
    }


def report(sizes=None) -> dict:
    """Print the comparison table and write ``BENCH_chase_cache.json``."""
    data = measure(sizes)
    table = ResultTable(
        "Chase-segment cache — splicing memoized subtrees vs. re-deriving",
        [
            "depth",
            "uncached (s)",
            "cached (s)",
            "speedup",
            "deepen off (s)",
            "deepen on (s)",
            "speedup",
        ],
    )
    for row in data["results"]:
        table.add_row(
            row["depth"],
            row["uncached_seconds"],
            row["cached_seconds"],
            f"{row['speedup_repeated']:.1f}x",
            row["deepening_uncached_seconds"],
            row["deepening_cached_seconds"],
            f"{row['speedup_deepening']:.1f}x",
        )
    table.print()
    print(
        f"\nlargest size (depth {data['largest_size']}): repeated-workload speedup "
        f"{data['largest_size_speedup']:.1f}x, deepening speedup "
        f"{data['largest_size_speedup_deepening']:.1f}x, answers equal: "
        f"{data['all_answers_equal']}"
    )
    RESULTS_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    return data


if __name__ == "__main__":
    cli_sizes = [int(arg) for arg in sys.argv[1:]] or None
    report(cli_sizes)
