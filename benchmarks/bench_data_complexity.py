"""E2 — data complexity of NBCQ answering (Theorem 13/14, PTIME data complexity).

The program Σ (the employment ontology of Example 2, translated to guarded
normal Datalog±) and the query are fixed; only the database grows.  The paper
proves the problem is PTIME-complete in data complexity; the experiment
reports the empirical growth exponent of the measured running times, which
should be a small constant (roughly linear for this workload) rather than
exponential.
"""

from __future__ import annotations

import pytest

from repro.core.engine import WellFoundedEngine
from repro.bench.generators import employment_workload
from repro.bench.harness import ResultTable, fit_powerlaw_exponent, scaling_series

#: database sizes (number of persons) of the sweep
SIZES = [25, 50, 100, 200]

#: the fixed NBCQ: "is there an employee ID that is a valid ID?"
QUERY = "? employeeID(X, V), validID(V)"


def build(num_persons: int) -> tuple:
    return employment_workload(num_persons, seed=17)


def answer(workload: tuple) -> bool:
    program, database = workload
    engine = WellFoundedEngine(program, database)
    return engine.holds(QUERY)


@pytest.mark.experiment("E2")
@pytest.mark.parametrize("num_persons", SIZES)
def test_data_complexity_scaling(benchmark, num_persons):
    """Answering the fixed NBCQ as the number of persons grows."""
    workload = build(num_persons)
    result = benchmark.pedantic(answer, args=(workload,), rounds=3, iterations=1)
    assert result is True


def report() -> None:
    """Print the E2 series and the fitted growth exponent."""
    series = scaling_series(SIZES, build, answer, repeats=3)
    table = ResultTable(
        "E2 — data complexity: fixed Σ and Q, growing database",
        ["persons", "database atoms", "seconds"],
    )
    for (size, elapsed) in series:
        _, database = build(size)
        table.add_row(size, len(database), elapsed)
    table.print()
    exponent = fit_powerlaw_exponent([s for s, _ in series], [t for _, t in series])
    print(
        f"\nempirical growth exponent ~ {exponent:.2f} "
        "(paper: PTIME data complexity — a small constant exponent is expected)"
    )


if __name__ == "__main__":
    report()
